//! CSV output for experiment results (hand-rolled: the offline dependency
//! set has no csv crate, and the needs are simple).

use std::io::{self, Write};
use std::path::Path;

/// A CSV writer with minimal quoting (fields containing commas, quotes,
/// or newlines are double-quoted).
pub struct CsvWriter<W: Write> {
    inner: W,
}

impl CsvWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a CSV file, creating parent directories as
    /// needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(CsvWriter {
            inner: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl<W: Write> CsvWriter<W> {
    /// Wrap any writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Write one row of string fields.
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) -> io::Result<()> {
        let mut first = true;
        for f in fields {
            if !first {
                write!(self.inner, ",")?;
            }
            first = false;
            let f = f.as_ref();
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                write!(self.inner, "\"{}\"", f.replace('"', "\"\""))?;
            } else {
                write!(self.inner, "{f}")?;
            }
        }
        writeln!(self.inner)
    }

    /// Write a row of numeric fields with 6 significant digits.
    pub fn num_row(&mut self, fields: &[f64]) -> io::Result<()> {
        let strings: Vec<String> = fields.iter().map(|x| format!("{x:.6}")).collect();
        self.row(&strings)
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Format a `(value, cum_fraction)` CDF as CSV text (header + rows) —
/// handy for quick plotting of figure data.
pub fn cdf_to_csv(label: &str, points: &[(f64, f64)]) -> String {
    let mut s = format!("{label},cdf\n");
    for (v, f) in points {
        s.push_str(&format!("{v:.6},{f:.6}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf);
            w.row(&["a", "b", "c"]).unwrap();
            w.num_row(&[1.5, 2.0]).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "a,b,c\n1.500000,2.000000\n");
    }

    #[test]
    fn quoting() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf);
            w.row(&["x,y", "he said \"hi\"", "plain"]).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "\"x,y\",\"he said \"\"hi\"\"\",plain\n");
    }

    #[test]
    fn cdf_formatting() {
        let s = cdf_to_csv("rtt_ms", &[(1.0, 0.5), (2.0, 1.0)]);
        assert!(s.starts_with("rtt_ms,cdf\n"));
        assert!(s.contains("2.000000,1.000000"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("leo_core_csv_test");
        let path = dir.join("nested").join("out.csv");
        {
            let mut w = CsvWriter::create(&path).unwrap();
            w.row(&["h1", "h2"]).unwrap();
            w.flush().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h1,h2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
