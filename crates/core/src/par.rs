//! Scoped-thread parallel map.
//!
//! The experiments are CPU-bound (thousands of Dijkstra runs per
//! snapshot), so — per the Rust networking guidance — an async runtime is
//! the wrong tool; plain scoped threads over an index-sharded work queue
//! are all we need, with no unsafe code and no extra dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Apply `f` to every item in parallel, preserving input order in the
/// output. `f` must be `Sync` (it is shared across threads).
///
/// Uses up to `threads` OS threads (0 = one per available core). Work is
/// distributed dynamically via an atomic cursor, so uneven item costs
/// (e.g. snapshots with more aircraft) balance out.
///
/// Results are deposited into per-thread local buffers and merged after
/// the workers join — there is **no lock anywhere on the per-item path**
/// (an earlier version took a global mutex per result, which serialized
/// the hottest fan-out in the pipeline: 96 snapshots × thousands of
/// Dijkstra runs).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        threads
    }
    .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            for (i, r) in w.join().expect("worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<i32> = vec![];
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still produce correct results.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn order_preserved_under_many_uneven_items() {
        // 1,500 items whose costs differ by orders of magnitude, so the
        // dynamic cursor interleaves completions across threads heavily;
        // output order must still exactly match input order.
        let items: Vec<u64> = (0..1500).collect();
        let out = parallel_map(&items, 8, |&x| {
            let spin = (x % 13) * ((x % 3) * 7_000);
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x * 31 + 7
        });
        assert_eq!(out.len(), items.len());
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 31 + 7, "slot {i} out of order");
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let items = vec![5, 6];
        assert_eq!(parallel_map(&items, 0, |&x| x), vec![5, 6]);
    }
}
