//! Scoped-thread parallel map.
//!
//! The experiments are CPU-bound (thousands of Dijkstra runs per
//! snapshot), so — per the Rust networking guidance — an async runtime is
//! the wrong tool; plain scoped threads over an index-sharded work queue
//! are all we need, with no unsafe code and no extra dependencies.

use leo_util::telemetry::{Counter, Histogram, Level};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Telemetry: items processed across all `parallel_map` fan-outs.
static PAR_ITEMS: Counter = Counter::new("par_items_processed");
/// Telemetry: fan-out invocations.
static PAR_FANOUTS: Counter = Counter::new("par_fanouts");
/// Telemetry: per-worker busy nanoseconds (one sample per worker per
/// fan-out) — the imbalance fingerprint of the pipeline.
static PAR_WORKER_BUSY_NS: Histogram = Histogram::new("par_worker_busy_ns");

/// What one worker thread did during a [`parallel_map_stats`] fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Items this worker pulled off the shared cursor.
    pub items: usize,
    /// Wall time this worker spent inside the mapped closure, ns.
    pub busy_ns: u64,
}

/// Per-worker accounting of one fan-out.
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// One entry per worker thread, in spawn order. Empty when the
    /// single-threaded fallback ran (0 or 1 workers requested, or a
    /// single item).
    pub workers: Vec<WorkerStats>,
}

impl ParStats {
    /// Sum of items across workers (equals the input length when the
    /// parallel path ran).
    pub fn total_items(&self) -> usize {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Sum of busy time across workers, ns.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Max-over-mean busy time: 1.0 = perfectly balanced; large values
    /// mean one worker carried the fan-out. 0.0 when empty.
    pub fn imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let max = self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0) as f64;
        let mean = self.total_busy_ns() as f64 / self.workers.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }
}

/// Apply `f` to every item in parallel, preserving input order in the
/// output. `f` must be `Sync` (it is shared across threads).
///
/// Uses up to `threads` OS threads (0 = one per available core). Work is
/// distributed dynamically via an atomic cursor, so uneven item costs
/// (e.g. snapshots with more aircraft) balance out.
///
/// Results are deposited into per-thread local buffers and merged after
/// the workers join — there is **no lock anywhere on the per-item path**
/// (an earlier version took a global mutex per result, which serialized
/// the hottest fan-out in the pipeline: 96 snapshots × thousands of
/// Dijkstra runs).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_stats(items, threads, f).0
}

/// [`parallel_map`] that also reports per-worker items/busy-time, so
/// load imbalance across the fan-out is visible. The stats are fed to
/// telemetry (`par_items_processed`, `par_worker_busy_ns`) when enabled.
pub fn parallel_map_stats<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), ParStats::default());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        threads
    }
    .min(n);
    if threads <= 1 {
        // lint: allow(wall-clock) feeds the busy_ns telemetry field only, which determinism comparisons exclude
        let t0 = Instant::now();
        let out: Vec<R> = items.iter().map(&f).collect();
        let stats = ParStats {
            workers: vec![WorkerStats {
                items: n,
                busy_ns: t0.elapsed().as_nanos() as u64,
            }],
        };
        record_fanout(&stats);
        return (out, stats);
    }

    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut stats = ParStats::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut busy_ns = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // lint: allow(wall-clock) feeds the busy_ns telemetry field only, which determinism comparisons exclude
                        let t0 = Instant::now();
                        let r = f(&items[i]);
                        busy_ns += t0.elapsed().as_nanos() as u64;
                        local.push((i, r));
                    }
                    (local, busy_ns)
                })
            })
            .collect();
        for w in workers {
            // lint: allow(unwrap-in-lib) re-raising a worker panic on the coordinating thread is the intended failure mode
            let (local, busy_ns) = w.join().expect("worker panicked");
            stats.workers.push(WorkerStats {
                items: local.len(),
                busy_ns,
            });
            for (i, r) in local {
                out[i] = Some(r);
            }
        }
    });
    record_fanout(&stats);
    (
        out.into_iter()
            // lint: allow(unwrap-in-lib) the atomic cursor hands each index to exactly one worker, so every slot is written
            .map(|r| r.expect("all slots filled"))
            .collect(),
        stats,
    )
}

/// Feed one fan-out's stats to telemetry (no-op when disabled).
fn record_fanout(stats: &ParStats) {
    if !leo_util::telemetry::enabled(Level::Info) {
        return;
    }
    PAR_FANOUTS.add(1);
    PAR_ITEMS.add(stats.total_items() as u64);
    for w in &stats.workers {
        PAR_WORKER_BUSY_NS.record(w.busy_ns);
    }
    leo_util::telemetry::debug_log(|| {
        format!(
            "parallel_map: {} workers, {} items, imbalance {:.2}",
            stats.workers.len(),
            stats.total_items(),
            stats.imbalance()
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<i32> = vec![];
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still produce correct results.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn order_preserved_under_many_uneven_items() {
        // 1,500 items whose costs differ by orders of magnitude, so the
        // dynamic cursor interleaves completions across threads heavily;
        // output order must still exactly match input order.
        let items: Vec<u64> = (0..1500).collect();
        let out = parallel_map(&items, 8, |&x| {
            let spin = (x % 13) * ((x % 3) * 7_000);
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x * 31 + 7
        });
        assert_eq!(out.len(), items.len());
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 31 + 7, "slot {i} out of order");
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let items = vec![5, 6];
        assert_eq!(parallel_map(&items, 0, |&x| x), vec![5, 6]);
    }

    #[test]
    fn stats_sum_to_item_count_under_uneven_costs() {
        // 1,200 items with costs spanning orders of magnitude: every item
        // must be accounted to exactly one worker, and each worker that
        // processed anything must report busy time.
        let items: Vec<u64> = (0..1200).collect();
        let (out, stats) = parallel_map_stats(&items, 8, |&x| {
            let spin = (x % 11) * ((x % 5) * 3_000);
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
        assert_eq!(
            stats.total_items(),
            items.len(),
            "items must partition exactly"
        );
        assert!(stats.workers.len() <= 8);
        assert!(!stats.workers.is_empty());
        for (w, s) in stats.workers.iter().enumerate() {
            if s.items > 0 {
                assert!(
                    s.busy_ns > 0,
                    "worker {w} processed {} items in 0 ns",
                    s.items
                );
            }
        }
        assert!(stats.imbalance() >= 1.0 || stats.total_busy_ns() == 0);
    }

    #[test]
    fn stats_present_on_single_thread_path() {
        let items = vec![1u64, 2, 3];
        let (out, stats) = parallel_map_stats(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.total_items(), 3);
    }

    #[test]
    fn imbalance_of_empty_stats_is_zero() {
        assert_eq!(ParStats::default().imbalance(), 0.0);
        let (_, stats) = parallel_map_stats::<u64, u64, _>(&[], 4, |&x| x);
        assert_eq!(stats.imbalance(), 0.0);
    }
}
