//! Distribution utilities for the experiment outputs (CDFs, percentiles).

/// A percentile of a sample set, by linear interpolation between order
/// statistics (`p ∈ [0, 100]`). Returns `NaN` on an empty slice.
///
/// The input need not be sorted; a sorted copy is made. For repeated
/// queries over one sample, use [`Distribution`].
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    Distribution::from_samples(samples).percentile(p)
}

/// A sorted sample set with percentile/CDF accessors.
#[derive(Debug, Clone)]
pub struct Distribution {
    sorted: Vec<f64>,
}

impl Distribution {
    /// Build from unsorted samples (NaNs are dropped).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of (non-NaN) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Minimum (NaN if empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Maximum (NaN if empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Arithmetic mean (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            f64::NAN
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Median (NaN if empty).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Percentile `p ∈ [0, 100]` with linear interpolation.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return f64::NAN;
        }
        if n == 1 {
            return self.sorted[0];
        }
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Empirical CDF points `(value, fraction ≤ value)`, decimated to at
    /// most `max_points` for plotting.
    pub fn cdf_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || max_points == 0 {
            return Vec::new();
        }
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0;
        let mut last_idx = None;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            last_idx = Some(idx);
            i += step;
        }
        // Compare by *index*, not value: when the maximum is duplicated,
        // a decimated point can carry the max's value with a fraction
        // below 1.0, and the curve must still close at exactly 1.0.
        if last_idx != Some(n - 1) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }

    /// Fraction of samples ≥ `threshold` (an exceedance probability).
    pub fn exceedance(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&x| x < threshold);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }
}

/// An **exact** streaming upper percentile in bounded memory.
///
/// Keeps only the largest `K` samples (K sized from the percentile and a
/// caller-supplied upper bound on the stream length) plus the total
/// count, and then evaluates `p` with bit-for-bit the same
/// interpolation as [`Distribution::percentile`] — the tracked tail
/// always contains both order statistics the formula touches, so this is
/// not an approximation. The weather study uses it for per-pair p99.5
/// across a sweep: O(pairs · K) instead of O(pairs · snapshots).
///
/// Sizing: evaluating `p` needs the sorted global indices `⌊p/100 ·
/// (n−1)⌋` and up, i.e. the largest `n·(1 − p/100) + p/100 + 1` samples;
/// `K = ⌈(1 − p/100) · max_total⌉ + 2` covers every `n ≤ max_total`.
///
/// [`TailQuantile::merge`] is exact across arbitrary splits of the
/// stream (an element outside a chunk's top-K is outside the global
/// top-K), so chunked parallel sweeps are thread-count invariant.
#[derive(Debug, Clone)]
pub struct TailQuantile {
    p: f64,
    cap: usize,
    /// The largest `≤ cap` samples seen, sorted ascending.
    top: Vec<f64>,
    /// Total (non-NaN) samples seen.
    n: u64,
}

impl TailQuantile {
    /// A tracker for percentile `p ∈ [0, 100]` over a stream of at most
    /// `max_total` samples. (Feeding more than `max_total` samples may
    /// make the tracked tail too short; `value` then reports the
    /// smallest tracked sample and debug builds assert.)
    pub fn new(p: f64, max_total: usize) -> TailQuantile {
        let p = p.clamp(0.0, 100.0);
        let cap = ((1.0 - p / 100.0) * max_total as f64).ceil() as usize + 2;
        TailQuantile {
            p,
            cap,
            top: Vec::new(),
            n: 0,
        }
    }

    /// Record one sample (NaNs are dropped, mirroring
    /// [`Distribution::from_samples`]).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        if self.top.len() == self.cap {
            match self.top.first() {
                // Full and no larger than the smallest kept sample:
                // cannot be among the needed order statistics.
                Some(first) if f64::total_cmp(&v, first).is_le() => return,
                _ => {}
            }
        }
        let idx = self.top.partition_point(|x| f64::total_cmp(x, &v).is_lt());
        self.top.insert(idx, v);
        if self.top.len() > self.cap {
            self.top.remove(0);
        }
    }

    /// Fold another tracker for the same percentile in (exact).
    pub fn merge(&mut self, other: &TailQuantile) {
        debug_assert_eq!(self.p.to_bits(), other.p.to_bits());
        self.n += other.n;
        let mut merged = Vec::with_capacity(self.top.len() + other.top.len());
        let (a, b) = (&self.top, &other.top);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if f64::total_cmp(&a[i], &b[j]).is_le() {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        if merged.len() > self.cap {
            merged.drain(..merged.len() - self.cap);
        }
        self.top = merged;
    }

    /// Total (non-NaN) samples recorded.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The percentile value — identical bits to
    /// `Distribution::from_samples(all_samples).percentile(p)`. NaN when
    /// empty.
    pub fn value(&self) -> f64 {
        let n = self.n as usize;
        if n == 0 {
            return f64::NAN;
        }
        if n == 1 {
            return self.top[0];
        }
        let rank = self.p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        let offset = n - self.top.len();
        if lo < offset {
            debug_assert!(
                false,
                "TailQuantile undersized: fed more than max_total samples"
            );
            return self.top[0];
        }
        self.top[lo - offset] * (1.0 - frac) + self.top[hi - offset] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_set() {
        let d = Distribution::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.percentile(0.0), 1.0);
        assert_eq!(d.percentile(50.0), 3.0);
        assert_eq!(d.percentile(100.0), 5.0);
        assert_eq!(d.percentile(25.0), 2.0);
        assert_eq!(d.median(), 3.0);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn interpolates_between_ranks() {
        let d = Distribution::from_samples(&[0.0, 10.0]);
        assert_eq!(d.percentile(50.0), 5.0);
        assert_eq!(d.percentile(95.0), 9.5);
    }

    #[test]
    fn unsorted_input_ok() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), 3.0);
    }

    #[test]
    fn empty_is_nan() {
        let d = Distribution::from_samples(&[]);
        assert!(d.percentile(50.0).is_nan());
        assert!(d.min().is_nan());
        assert!(d.is_empty());
    }

    #[test]
    fn nan_samples_dropped() {
        let d = Distribution::from_samples(&[1.0, f64::NAN, 3.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.median(), 2.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 37.0) % 101.0).collect();
        let d = Distribution::from_samples(&samples);
        let pts = d.cdf_points(50);
        assert!(pts.len() <= 52);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_closes_at_one_when_max_is_duplicated() {
        // Regression: with a duplicated maximum, decimation used to emit
        // a point carrying the max *value* at fraction < 1.0 and the
        // value-based tail check then skipped the closing point, leaving
        // the plotted CDF ending below 1.0.
        let d = Distribution::from_samples(&[1.0, 2.0, 2.0]);
        let pts = d.cdf_points(2);
        assert_eq!(pts.last().unwrap(), &(2.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }

        // Same shape at larger scale: heavy duplication of the max.
        let mut samples = vec![0.0; 10];
        samples.extend(std::iter::repeat_n(5.0, 90));
        let d = Distribution::from_samples(&samples);
        let pts = d.cdf_points(7);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn tail_quantile_matches_distribution_bit_for_bit() {
        let mut rng = leo_util::Rng64::seed_from_u64(0x7a11);
        for &(p, n) in &[
            (99.5, 96usize),
            (99.5, 8),
            (95.0, 200),
            (90.0, 7),
            (100.0, 50),
        ] {
            let samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 250.0).collect();
            let mut tq = TailQuantile::new(p, n);
            for &v in &samples {
                tq.record(v);
            }
            let exact = Distribution::from_samples(&samples).percentile(p);
            assert_eq!(
                tq.value().to_bits(),
                exact.to_bits(),
                "p{p} over {n} samples"
            );
            assert_eq!(tq.len(), n as u64);
        }
    }

    #[test]
    fn tail_quantile_merge_is_split_invariant() {
        let mut rng = leo_util::Rng64::seed_from_u64(0xbeef);
        let samples: Vec<f64> = (0..96).map(|_| rng.next_f64() * 40.0).collect();
        let mut whole = TailQuantile::new(99.5, 96);
        for &v in &samples {
            whole.record(v);
        }
        for split in [1usize, 17, 48, 95] {
            let mut a = TailQuantile::new(99.5, 96);
            let mut b = TailQuantile::new(99.5, 96);
            for &v in &samples[..split] {
                a.record(v);
            }
            for &v in &samples[split..] {
                b.record(v);
            }
            a.merge(&b);
            assert_eq!(
                a.value().to_bits(),
                whole.value().to_bits(),
                "split {split}"
            );
        }
    }

    #[test]
    fn tail_quantile_nan_and_empty() {
        let mut tq = TailQuantile::new(99.5, 10);
        assert!(tq.is_empty());
        assert!(tq.value().is_nan());
        tq.record(f64::NAN);
        assert!(tq.is_empty(), "NaN must be dropped");
        tq.record(3.5);
        assert_eq!(tq.value(), 3.5, "single sample returns itself");
    }

    #[test]
    fn exceedance_fraction() {
        let d = Distribution::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.exceedance(2.5), 0.5);
        assert_eq!(d.exceedance(0.0), 1.0);
        assert_eq!(d.exceedance(10.0), 0.0);
        assert_eq!(d.exceedance(2.0), 0.75, "threshold counts as exceeded");
    }
}
