//! Compact binary serialization of [`NetworkSnapshot`]s.
//!
//! Paper-scale snapshots take hundreds of milliseconds to construct
//! (orbit propagation + visibility over ~70k ground nodes); experiments
//! that revisit the same `(time, mode)` grid — or hand snapshots to other
//! tooling — can cache them as a compact binary blob instead. The format
//! is versioned, explicit little-endian, and decoding validates all
//! invariants (counts, node-id ranges, edge metadata consistency), so a
//! truncated or corrupted blob yields an error rather than a bad graph.

use crate::snapshot::{EdgeKind, Mode, NetworkSnapshot, NodeKind};
use leo_geo::GeoPoint;
use leo_graph::GraphBuilder;
use leo_util::buf::{ByteBuf, ReadBytes};
use leo_util::telemetry::Counter;

/// Telemetry: snapshots encoded / bytes produced.
static CODEC_ENCODES: Counter = Counter::new("codec_snapshots_encoded");
static CODEC_BYTES_ENCODED: Counter = Counter::new("codec_bytes_encoded");
/// Telemetry: snapshots decoded / bytes consumed (successful decodes).
static CODEC_DECODES: Counter = Counter::new("codec_snapshots_decoded");
static CODEC_BYTES_DECODED: Counter = Counter::new("codec_bytes_decoded");

/// Magic bytes identifying a snapshot blob.
const MAGIC: &[u8; 4] = b"LEOS";
/// Current format version.
const VERSION: u16 = 1;

/// Errors produced by [`decode_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with the snapshot magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The blob ended before the declared content.
    Truncated,
    /// A field held an invalid value (description attached).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a snapshot blob (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::Truncated => write!(f, "snapshot blob truncated"),
            CodecError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn mode_tag(m: Mode) -> u8 {
    match m {
        Mode::BpOnly => 0,
        Mode::Hybrid => 1,
        Mode::IslOnly => 2,
    }
}

fn tag_mode(t: u8) -> Result<Mode, CodecError> {
    match t {
        0 => Ok(Mode::BpOnly),
        1 => Ok(Mode::Hybrid),
        2 => Ok(Mode::IslOnly),
        _ => Err(CodecError::Invalid("mode tag")),
    }
}

/// Serialize a snapshot into a self-contained blob.
pub fn encode_snapshot(snap: &NetworkSnapshot) -> Vec<u8> {
    let mut buf = ByteBuf::with_capacity(64 + snap.nodes.len() * 8 + snap.edges.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(mode_tag(snap.mode));
    buf.put_f64_le(snap.t_s);
    buf.put_u32_le(snap.num_satellites as u32);
    buf.put_u32_le(snap.num_aircraft as u32);
    buf.put_u32_le(snap.nodes.len() as u32);
    buf.put_u32_le(snap.edges.len() as u32);
    // Node kinds: tag + payload.
    for n in &snap.nodes {
        match n {
            NodeKind::Satellite(id) => {
                buf.put_u8(0);
                buf.put_u32_le(*id);
            }
            NodeKind::City(i) => {
                buf.put_u8(1);
                buf.put_u32_le(*i);
            }
            NodeKind::Relay(i) => {
                buf.put_u8(2);
                buf.put_u32_le(*i);
            }
            NodeKind::Aircraft(id) => {
                buf.put_u8(3);
                buf.put_u64_le(*id);
            }
        }
    }
    // Ground positions.
    buf.put_u32_le(snap.ground_positions.len() as u32);
    for p in &snap.ground_positions {
        buf.put_f64_le(p.lat());
        buf.put_f64_le(p.lon());
    }
    // Edges: endpoints + weight + kind.
    for e in 0..snap.edges.len() as u32 {
        let (u, v, w) = snap.graph.edge(e);
        buf.put_u32_le(u);
        buf.put_u32_le(v);
        buf.put_f64_le(w);
        match snap.edges[e as usize] {
            EdgeKind::Isl => buf.put_u8(0),
            EdgeKind::UpDown {
                ground,
                sat,
                elevation_rad,
            } => {
                buf.put_u8(1);
                buf.put_u32_le(ground);
                buf.put_u32_le(sat);
                buf.put_f64_le(elevation_rad);
            }
        }
    }
    let out = buf.into_vec();
    CODEC_ENCODES.add(1);
    CODEC_BYTES_ENCODED.add(out.len() as u64);
    out
}

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(CodecError::Truncated);
        }
    };
}

/// Deserialize a snapshot blob produced by [`encode_snapshot`].
pub fn decode_snapshot(mut buf: &[u8]) -> Result<NetworkSnapshot, CodecError> {
    let total_len = buf.len();
    need!(buf, 4);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    need!(buf, 2 + 1 + 8 + 4 * 4);
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let mode = tag_mode(buf.get_u8())?;
    let t_s = buf.get_f64_le();
    let num_satellites = buf.get_u32_le() as usize;
    let num_aircraft = buf.get_u32_le() as usize;
    let num_nodes = buf.get_u32_le() as usize;
    let num_edges = buf.get_u32_le() as usize;
    if num_satellites > num_nodes {
        return Err(CodecError::Invalid("satellite count exceeds node count"));
    }

    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        need!(buf, 1);
        let tag = buf.get_u8();
        let kind = match tag {
            0 => {
                need!(buf, 4);
                NodeKind::Satellite(buf.get_u32_le())
            }
            1 => {
                need!(buf, 4);
                NodeKind::City(buf.get_u32_le())
            }
            2 => {
                need!(buf, 4);
                NodeKind::Relay(buf.get_u32_le())
            }
            3 => {
                need!(buf, 8);
                NodeKind::Aircraft(buf.get_u64_le())
            }
            _ => return Err(CodecError::Invalid("node kind tag")),
        };
        nodes.push(kind);
    }

    need!(buf, 4);
    let num_ground = buf.get_u32_le() as usize;
    if num_ground != num_nodes - num_satellites {
        return Err(CodecError::Invalid("ground position count"));
    }
    let mut ground_positions = Vec::with_capacity(num_ground);
    for _ in 0..num_ground {
        need!(buf, 16);
        let lat = buf.get_f64_le();
        let lon = buf.get_f64_le();
        if !lat.is_finite() || !lon.is_finite() {
            return Err(CodecError::Invalid("non-finite ground position"));
        }
        ground_positions.push(GeoPoint::new(lat, lon));
    }

    let mut builder = GraphBuilder::new(num_nodes);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        need!(buf, 4 + 4 + 8 + 1);
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        let w = buf.get_f64_le();
        if u as usize >= num_nodes || v as usize >= num_nodes || u == v {
            return Err(CodecError::Invalid("edge endpoints"));
        }
        if !w.is_finite() || w < 0.0 {
            return Err(CodecError::Invalid("edge weight"));
        }
        let kind = match buf.get_u8() {
            0 => EdgeKind::Isl,
            1 => {
                need!(buf, 4 + 4 + 8);
                let ground = buf.get_u32_le();
                let sat = buf.get_u32_le();
                let elevation_rad = buf.get_f64_le();
                if (ground != u || sat != v) && (ground != v || sat != u) {
                    return Err(CodecError::Invalid("up/down metadata endpoints"));
                }
                EdgeKind::UpDown {
                    ground,
                    sat,
                    elevation_rad,
                }
            }
            _ => return Err(CodecError::Invalid("edge kind tag")),
        };
        builder.add_edge(u, v, w);
        edges.push(kind);
    }

    CODEC_DECODES.add(1);
    CODEC_BYTES_DECODED.add(total_len as u64);
    Ok(NetworkSnapshot {
        t_s,
        mode,
        graph: builder.build(),
        nodes,
        edges,
        ground_positions,
        num_satellites,
        num_aircraft,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::snapshot::StudyContext;

    fn sample() -> NetworkSnapshot {
        StudyContext::build(ExperimentScale::Tiny.config()).snapshot(3600.0, Mode::Hybrid)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample();
        let blob = encode_snapshot(&snap);
        let back = decode_snapshot(&blob).expect("decode");
        assert_eq!(back.t_s, snap.t_s);
        assert_eq!(back.mode, snap.mode);
        assert_eq!(back.num_satellites, snap.num_satellites);
        assert_eq!(back.num_aircraft, snap.num_aircraft);
        assert_eq!(back.nodes, snap.nodes);
        assert_eq!(back.edges, snap.edges);
        assert_eq!(back.graph.num_nodes(), snap.graph.num_nodes());
        assert_eq!(back.graph.num_edges(), snap.graph.num_edges());
        for e in 0..snap.graph.num_edges() as u32 {
            assert_eq!(back.graph.edge(e), snap.graph.edge(e));
        }
        for (a, b) in back.ground_positions.iter().zip(&snap.ground_positions) {
            assert!(a.central_angle(b) < 1e-15);
        }
    }

    #[test]
    fn decoded_snapshot_routes_identically() {
        let snap = sample();
        let back = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        let src = snap.city_node(0);
        let a = leo_graph::dijkstra(&snap.graph, src);
        let b = leo_graph::dijkstra(&back.graph, src);
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            decode_snapshot(b"NOPE.....").unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let snap = sample();
        let mut blob = encode_snapshot(&snap).to_vec();
        blob[4] = 99; // version LE low byte
        assert_eq!(
            decode_snapshot(&blob).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let snap = sample();
        let blob = encode_snapshot(&snap);
        // Any prefix must fail cleanly, never panic.
        for cut in [0, 3, 6, 10, 30, blob.len() / 2, blob.len() - 1] {
            let r = decode_snapshot(&blob[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn rejects_corrupted_edge_endpoint() {
        let snap = sample();
        let blob = encode_snapshot(&snap).to_vec();
        // Flip a byte deep in the edge section; decoding must error (or,
        // if it lands on a weight byte, still produce a valid graph —
        // corrupting many positions must never panic).
        for pos in (blob.len() - 200..blob.len()).step_by(7) {
            let mut b = blob.clone();
            b[pos] ^= 0xFF;
            let _ = decode_snapshot(&b);
        }
    }

    #[test]
    fn error_display_is_useful() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(CodecError::Invalid("edge weight")
            .to_string()
            .contains("edge weight"));
    }

    #[test]
    fn blob_is_compact() {
        let snap = sample();
        let blob = encode_snapshot(&snap);
        // Well under 64 bytes per edge on average.
        assert!(blob.len() < snap.graph.num_edges() * 48 + snap.nodes.len() * 24);
    }
}
