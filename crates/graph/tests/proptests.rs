//! Property-based tests for graph algorithms on random graphs (on
//! `leo_util::check`; 256 cases per property, ≥ the proptest originals).

use leo_graph::*;
use leo_util::check::{check, Gen};
use leo_util::{check_assert, check_assert_eq};

/// Random connected-ish graph: n nodes, a random spanning-ish chain plus
/// random extra edges with random weights.
fn arb_graph(g: &mut Gen) -> Graph {
    let n = g.usize(2..40);
    let extra = g.vec(0..120, |g| (g.u32(0..40), g.u32(0..40), g.f64(0.1..100.0)));
    let mut b = GraphBuilder::new(n);
    // Chain keeps most graphs connected so paths usually exist.
    for i in 1..n as u32 {
        b.add_edge(i - 1, i, 1.0 + (i as f64 % 7.0));
    }
    for (u, v, w) in extra {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Bellman-Ford reference implementation.
fn bellman_ford(g: &Graph, source: u32) -> Vec<f64> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for e in 0..g.num_edges() as u32 {
            let (u, v, w) = g.edge(e);
            if dist[u as usize] + w < dist[v as usize] {
                dist[v as usize] = dist[u as usize] + w;
                changed = true;
            }
            if dist[v as usize] + w < dist[u as usize] {
                dist[u as usize] = dist[v as usize] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Dijkstra agrees with Bellman-Ford on random graphs.
#[test]
fn dijkstra_matches_bellman_ford() {
    check("dijkstra_matches_bellman_ford", |gen| {
        let g = arb_graph(gen);
        let sp = dijkstra(&g, 0);
        let reference = bellman_ford(&g, 0);
        for (v, (&a, &b)) in sp.dist.iter().zip(&reference).enumerate() {
            if a.is_finite() || b.is_finite() {
                check_assert!((a - b).abs() < 1e-9, "node {v}: {a} vs {b}");
            }
        }
        Ok(())
    });
}

/// Extracted paths are well-formed: consecutive nodes joined by the
/// listed edges, weights summing to the reported distance.
#[test]
fn paths_are_well_formed() {
    check("paths_are_well_formed", |gen| {
        let g = arb_graph(gen);
        let target = gen.u32(0..40) % g.num_nodes() as u32;
        let sp = dijkstra(&g, 0);
        if let Some(p) = extract_path(&sp, target) {
            check_assert_eq!(p.nodes.len(), p.edges.len() + 1);
            let mut sum = 0.0;
            for (i, &e) in p.edges.iter().enumerate() {
                let (u, v, w) = g.edge(e);
                let (a, b) = (p.nodes[i], p.nodes[i + 1]);
                check_assert!((u == a && v == b) || (u == b && v == a));
                sum += w;
            }
            check_assert!((sum - p.total_weight).abs() < 1e-9);
        }
        Ok(())
    });
}

/// k-edge-disjoint paths: no edge reuse, non-decreasing weights, and
/// path 0 is the global shortest path.
#[test]
fn disjoint_paths_invariants() {
    check("disjoint_paths_invariants", |gen| {
        let g = arb_graph(gen);
        let k = gen.usize(1..5);
        let target = (g.num_nodes() - 1) as u32;
        let paths = k_edge_disjoint_paths(&g, 0, target, k, None);
        check_assert!(paths.len() <= k);
        let mut used = std::collections::HashSet::new();
        let mut prev = 0.0;
        for p in &paths {
            check_assert!(
                p.total_weight >= prev - 1e-9,
                "weights must be non-decreasing"
            );
            prev = p.total_weight;
            for &e in &p.edges {
                check_assert!(used.insert(e), "edge {e} reused across paths");
            }
        }
        if let Some(first) = paths.first() {
            let sp = dijkstra(&g, 0);
            check_assert!((first.total_weight - sp.dist[target as usize]).abs() < 1e-9);
        }
        Ok(())
    });
}

/// Components partition the nodes, and nodes in one component are
/// mutually reachable per Dijkstra.
#[test]
fn components_consistent_with_reachability() {
    check("components_consistent_with_reachability", |gen| {
        let g = arb_graph(gen);
        let labels = connected_components(&g, None);
        let sp = dijkstra(&g, 0);
        for v in 0..g.num_nodes() {
            check_assert_eq!(labels[v] == labels[0], sp.reached(v as u32));
        }
        let sizes = component_sizes(&labels);
        check_assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
        Ok(())
    });
}

/// One warm `DijkstraWorkspace` reused across random graphs and sources
/// (with and without masks, with and without early-exit targets) agrees
/// exactly with fresh-allocation runs.
#[test]
fn workspace_matches_fresh_allocation() {
    let mut ws = DijkstraWorkspace::new();
    check("workspace_matches_fresh_allocation", |gen| {
        let g = arb_graph(gen);
        let n = g.num_nodes() as u32;
        let source = gen.u32(0..40) % n;
        let masked = gen.bool();
        let mask: Vec<bool> = (0..g.num_edges()).map(|_| masked && gen.bool()).collect();
        let target = if gen.bool() {
            Some(gen.u32(0..40) % n)
        } else {
            None
        };
        let fresh = dijkstra_with_mask(&g, source, &mask, target);
        let view = ws.run(&g, source, Some(&mask), target);
        for v in 0..n {
            check_assert_eq!(view.dist(v), fresh.dist[v as usize]);
            check_assert_eq!(view.reached(v), fresh.reached(v));
            check_assert_eq!(
                view.extract_path(v).map(|p| (p.nodes, p.edges)),
                extract_path(&fresh, v).map(|p| (p.nodes, p.edges))
            );
        }
        let materialized = view.to_shortest_paths();
        check_assert_eq!(materialized.dist, fresh.dist);
        check_assert_eq!(materialized.parent_edge, fresh.parent_edge);
        check_assert_eq!(materialized.parent_node, fresh.parent_node);
        Ok(())
    });
}

/// Early-exit runs never report a distance that disagrees with the full
/// run: every node an early-exited run claims reached has the true
/// shortest distance, and the target itself always does.
#[test]
fn early_exit_distances_are_never_stale() {
    check("early_exit_distances_are_never_stale", |gen| {
        let g = arb_graph(gen);
        let n = g.num_nodes() as u32;
        let target = gen.u32(0..40) % n;
        let mask = vec![false; g.num_edges()];
        let early = dijkstra_with_mask(&g, 0, &mask, Some(target));
        let full = dijkstra(&g, 0);
        check_assert!(
            (early.dist[target as usize] - full.dist[target as usize]).abs() < 1e-12
                || (!early.reached(target) && !full.reached(target))
        );
        for v in 0..n {
            if early.reached(v) {
                check_assert!(
                    (early.dist[v as usize] - full.dist[v as usize]).abs() < 1e-12,
                    "node {v}: early {} vs full {}",
                    early.dist[v as usize],
                    full.dist[v as usize]
                );
            }
        }
        Ok(())
    });
}

/// An edge list in insertion order (ids = positions), the form
/// [`mutate_edges`] steps to produce `SptWorkspace::apply` deltas.
fn arb_edge_list(gen: &mut Gen, n: usize) -> Vec<(u32, u32, f64)> {
    let mut edges = Vec::new();
    for i in 1..n as u32 {
        edges.push((i - 1, i, 1.0 + (i as f64 % 7.0)));
    }
    let extra = gen.vec(0..80, |g| (g.u32(0..40), g.u32(0..40), g.f64(0.1..100.0)));
    for (u, v, w) in extra {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            edges.push((u, v, w));
        }
    }
    edges
}

fn graph_of(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    b.build()
}

/// Step an edge list to a next graph version — some edges removed, some
/// reweighted (surviving ids stay compact in insertion order), some
/// added — returning exactly the delta shape `SptWorkspace::apply`
/// consumes.
#[allow(clippy::type_complexity)]
fn mutate_edges(
    gen: &mut Gen,
    n: usize,
    edges: &[(u32, u32, f64)],
) -> (Vec<(u32, u32, f64)>, Vec<EdgeId>, Vec<(EdgeId, EdgeId)>) {
    let mut next = Vec::new();
    let mut removed = Vec::new();
    let mut reweighted = Vec::new();
    for (old_id, &(u, v, w)) in edges.iter().enumerate() {
        if gen.u32(0..100) < 15 {
            removed.push(old_id as EdgeId);
        } else {
            let w = if gen.u32(0..100) < 30 {
                gen.f64(0.1..100.0)
            } else {
                w
            };
            reweighted.push((old_id as EdgeId, next.len() as EdgeId));
            next.push((u, v, w));
        }
    }
    let added = gen.vec(0..20, |g| (g.u32(0..40), g.u32(0..40), g.f64(0.1..100.0)));
    for (u, v, w) in added {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            next.push((u, v, w));
        }
    }
    (next, removed, reweighted)
}

/// `SptWorkspace::apply_for_targets` is bitwise-equivalent to the full
/// drain for every queried target (distances and extracted paths), its
/// surviving labels are all final, and a subsequent *full* repair on the
/// same workspace recovers the complete tree bit-for-bit — the early
/// exit never leaks half-settled state into later deltas.
#[test]
fn spt_targeted_repair_matches_full_drain() {
    check("spt_targeted_early_exit_equivalence", |gen| {
        let n = gen.usize(2..40);
        let e0 = arb_edge_list(gen, n);
        let g0 = graph_of(n, &e0);
        let (e1, removed1, rew1) = mutate_edges(gen, n, &e0);
        let g1 = graph_of(n, &e1);
        let (e2, removed2, rew2) = mutate_edges(gen, n, &e1);
        let g2 = graph_of(n, &e2);
        let src = gen.u32(0..40) % n as u32;
        let targets = gen.vec(1..6, |g| g.u32(0..40) % n as u32);

        // Identical deterministic starting trees.
        let mut full = SptWorkspace::new();
        let mut fast = SptWorkspace::new();
        full.rebuild(&g0, src);
        fast.rebuild(&g0, src);

        full.apply(&g1, &removed1, &rew1);
        fast.apply_for_targets(&g1, &removed1, &rew1, &targets);
        for &t in &targets {
            check_assert_eq!(fast.dist(t).to_bits(), full.dist(t).to_bits());
            match (fast.extract_path(t), full.extract_path(t)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    check_assert_eq!(a.nodes, b.nodes);
                    check_assert_eq!(a.edges, b.edges);
                    check_assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
                }
                (a, b) => check_assert!(false, "target {t}: {a:?} vs {b:?}"),
            }
        }
        // Labels the early exit kept are final (match the full drain);
        // discarded ones read as unreached, never as stale values.
        for v in 0..n as u32 {
            let d = fast.dist(v);
            if d.is_finite() {
                check_assert_eq!(d.to_bits(), full.dist(v).to_bits());
            }
        }

        // Second delta, applied fully to both: complete bitwise recovery.
        full.apply(&g2, &removed2, &rew2);
        fast.apply(&g2, &removed2, &rew2);
        let fresh = dijkstra(&g2, src);
        for v in 0..n {
            check_assert_eq!(fast.dist(v as u32).to_bits(), full.dist(v as u32).to_bits());
            check_assert_eq!(fast.dist(v as u32).to_bits(), fresh.dist[v].to_bits());
        }
        check_assert_eq!(fast.parent_edges(), full.parent_edges());
        check_assert_eq!(fast.parent_nodes(), full.parent_nodes());
        Ok(())
    });
}

/// Deterministic witness that the early exit actually fires: on a long
/// uniform chain with the target two hops from the source, the drain
/// must stop within the first buckets and discard the far tail to the
/// unreached shape (a full drain would keep every label finite).
#[test]
fn spt_targeted_repair_discards_far_labels() {
    let n = 2000usize;
    let chain = |w0: f64| {
        let mut b = GraphBuilder::new(n);
        b.add_edge(0, 1, w0);
        for i in 2..n as u32 {
            b.add_edge(i - 1, i, 10.0);
        }
        b.build()
    };
    let g0 = chain(10.0);
    let g1 = chain(5.0);
    let rew: Vec<(EdgeId, EdgeId)> = (0..g0.num_edges() as EdgeId).map(|e| (e, e)).collect();

    let mut fast = SptWorkspace::new();
    fast.rebuild(&g0, 0);
    fast.apply_for_targets(&g1, &[], &rew, &[1]);
    assert_eq!(fast.dist(1), 5.0);
    assert!(
        !fast.dist(n as u32 - 1).is_finite(),
        "tail label survived — the early exit never fired"
    );

    // The truncated workspace still repairs back to a full exact tree.
    fast.apply(&g0, &[], &rew);
    let fresh = dijkstra(&g0, 0);
    for v in 0..n {
        assert_eq!(fast.dist(v as u32).to_bits(), fresh.dist[v].to_bits());
    }
}

/// Yen's k-shortest-paths on equal-weight grid graphs — the worst case
/// for spur-path tie-breaking, since every same-hop-count path costs
/// *exactly* the same (1.0-weight edges sum without rounding). The
/// warm-workspace variant must return byte-identical paths in the same
/// order as the workspace-free one, the ranking must be deterministic
/// (re-running gives the identical list), and the list must be sorted,
/// loopless, and duplicate-free.
#[test]
fn yen_tie_breaking_deterministic_on_equal_weight_grids() {
    let mut ws = DijkstraWorkspace::new();
    check("yen_equal_weight_grid_equivalence", |gen| {
        let rows = gen.usize(2..5);
        let cols = gen.usize(2..6);
        let n = rows * cols;
        let mut b = GraphBuilder::new(n);
        for r in 0..rows {
            for c in 0..cols {
                let i = (r * cols + c) as u32;
                if c + 1 < cols {
                    b.add_edge(i, i + 1, 1.0);
                }
                if r + 1 < rows {
                    b.add_edge(i, i + cols as u32, 1.0);
                }
            }
        }
        let g = b.build();
        let src = gen.u32(0..n as u32);
        let dst = (n - 1) as u32;
        let k = gen.usize(1..8);
        let fresh = yen_k_shortest(&g, src, dst, k);
        let warm = yen_k_shortest_with(&g, src, dst, k, &mut ws);
        check_assert_eq!(fresh.len(), warm.len(), "warm vs fresh count");
        for (i, (a, b)) in fresh.iter().zip(&warm).enumerate() {
            check_assert_eq!(a.nodes, b.nodes, "path {i} nodes");
            check_assert_eq!(a.edges, b.edges, "path {i} edges");
            check_assert_eq!(
                a.total_weight.to_bits(),
                b.total_weight.to_bits(),
                "path {i} weight bits"
            );
        }
        // Re-running must reproduce the identical ranking (no hidden
        // iteration-order dependence among the tied candidates).
        let again = yen_k_shortest(&g, src, dst, k);
        check_assert_eq!(fresh.len(), again.len(), "rerun count");
        for (a, b) in fresh.iter().zip(&again) {
            check_assert_eq!(a.nodes, b.nodes, "rerun nodes");
        }
        let mut seen = std::collections::HashSet::new();
        let mut prev = 0.0;
        for p in &fresh {
            check_assert!(p.total_weight >= prev, "ranking must be sorted");
            prev = p.total_weight;
            check_assert!(seen.insert(p.nodes.clone()), "duplicate path");
            let mut uniq = p.nodes.clone();
            uniq.sort_unstable();
            uniq.dedup();
            check_assert_eq!(uniq.len(), p.nodes.len(), "path must be loopless");
        }
        if src != dst {
            check_assert!(!fresh.is_empty(), "grid is connected");
        }
        Ok(())
    });
}

/// Max-flow from 0 to n-1 is at least the bottleneck of the shortest
/// path (one augmenting path exists) and at most the degree-capacity
/// bound of either endpoint.
#[test]
fn maxflow_bounds() {
    check("maxflow_bounds", |gen| {
        let g = arb_graph(gen);
        let n = g.num_nodes();
        let t = (n - 1) as u32;
        let mut net = FlowNetwork::new(n);
        let mut cap_s = 0.0;
        let mut cap_t = 0.0;
        for e in 0..g.num_edges() as u32 {
            let (u, v, w) = g.edge(e);
            net.add_undirected(u, v, w);
            if u == 0 || v == 0 {
                cap_s += w;
            }
            if u == t || v == t {
                cap_t += w;
            }
        }
        let f = max_flow(&mut net, 0, t);
        check_assert!(f <= cap_s + 1e-6);
        check_assert!(f <= cap_t + 1e-6);
        // The chain edge (t-1, t) guarantees positive flow.
        check_assert!(f > 0.0);
        Ok(())
    });
}
