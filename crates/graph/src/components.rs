//! Connected components (used for the BP satellite-disconnection statistic).

use crate::graph::{Graph, NodeId};

/// Label every node with its connected-component id (0-based, assigned in
/// order of first discovery). Honors an optional `disabled` edge mask.
pub fn connected_components(g: &Graph, disabled: Option<&[bool]>) -> Vec<u32> {
    if let Some(d) = disabled {
        // lint: allow(panic-reachable) caller contract: the disabled mask is indexed by edge id; a mismatch means it was built for a different graph
        assert_eq!(d.len(), g.num_edges());
    }
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for h in g.neighbors(u) {
                if let Some(mask) = disabled {
                    if mask[h.edge as usize] {
                        continue;
                    }
                }
                if label[h.to as usize] == u32::MAX {
                    label[h.to as usize] = next;
                    stack.push(h.to);
                }
            }
        }
        next += 1;
    }
    label
}

/// Sizes of each component, indexed by component id.
pub fn component_sizes(labels: &[u32]) -> Vec<usize> {
    let max = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut sizes = vec![0usize; max];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(3, 4, 1.0);
        let g = b.build();
        let l = connected_components(&g, None);
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_ne!(l[0], l[3]);
        let sizes = component_sizes(&l);
        let mut s = sizes.clone();
        s.sort_unstable();
        assert_eq!(s, vec![2, 3]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = GraphBuilder::new(3).build();
        let l = connected_components(&g, None);
        assert_eq!(l, vec![0, 1, 2]);
        assert_eq!(component_sizes(&l), vec![1, 1, 1]);
    }

    #[test]
    fn mask_splits_component() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let bridge = b.add_edge(1, 2, 1.0);
        let g = b.build();
        let mut disabled = vec![false; g.num_edges()];
        disabled[bridge as usize] = true;
        let l = connected_components(&g, Some(&disabled));
        assert_eq!(l[0], l[1]);
        assert_ne!(l[1], l[2]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(connected_components(&g, None).is_empty());
        assert!(component_sizes(&[]).is_empty());
    }
}
