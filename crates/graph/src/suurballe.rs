//! Suurballe's algorithm: a *minimum total weight* pair of edge-disjoint
//! paths.
//!
//! The paper routes sub-flows over greedy iterative disjoint paths (as
//! floodns does) and explicitly leaves "superior routing schemes" to
//! future work (§5). Suurballe's algorithm is the classical optimal
//! answer for two paths: it can find disjoint pairs the greedy method
//! misses (greedy's first path may sever all remaining routes), and its
//! total weight is never worse. `leo-bench`'s routing ablation compares
//! the two.
//!
//! Implementation: Dijkstra potentials make all reduced costs
//! non-negative; the second search runs on the residual graph where the
//! first path's arcs are reversed (zero reduced cost); overlapping arcs
//! cancel when the two arc-sets are merged.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::shortest::{DijkstraWorkspace, Path};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pair of edge-disjoint paths with minimal combined weight, or fewer
/// if the graph doesn't support two.
///
/// Returns `vec![]` (unreachable), `vec![p]` (only one path exists), or
/// `vec![p1, p2]` with `p1.total_weight ≤ p2.total_weight` and no shared
/// [`EdgeId`]s. The combined weight is optimal over all edge-disjoint
/// pairs.
pub fn suurballe(g: &Graph, source: NodeId, target: NodeId) -> Vec<Path> {
    suurballe_with(g, source, target, &mut DijkstraWorkspace::new())
}

/// [`suurballe`] reusing the caller's warm workspace for the first
/// (potential-building) SSSP and the potentials buffer; the residual
/// reduced-cost search keeps its own small local state.
pub fn suurballe_with(
    g: &Graph,
    source: NodeId,
    target: NodeId,
    ws: &mut DijkstraWorkspace,
) -> Vec<Path> {
    // lint: allow(panic-reachable) degenerate query: disjoint-pair routing needs distinct endpoints
    assert_ne!(source, target, "source and target must differ");
    // 1. Shortest-path tree from the source for potentials. Full run (no
    // early exit), so every reachable node's distance is exact.
    let first = ws.run(g, source, None, None).extract_path(target);
    let Some(first) = first else {
        return Vec::new();
    };
    let mut pot_buf = ws.take_dist_buf();
    ws.view().write_dists(&mut pot_buf);
    let pot = &pot_buf;

    // Arc usage of the first path, keyed by (edge, direction): direction
    // 0 = from the lower endpoint, 1 = from the higher one.
    let arc_key = |from: NodeId, e: EdgeId| -> (EdgeId, u8) {
        let (u, _, _) = g.edge(e);
        (e, if from == u { 0 } else { 1 })
    };
    let mut p1_arcs = std::collections::HashSet::new();
    for (i, &e) in first.edges.iter().enumerate() {
        p1_arcs.insert(arc_key(first.nodes[i], e));
    }

    // 2. Dijkstra on reduced costs over the residual graph: the forward
    // arcs of P1 are removed; its reverse arcs have zero reduced cost.
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    #[derive(PartialEq)]
    struct Item {
        d: f64,
        v: NodeId,
    }
    impl Eq for Item {}
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> Ordering {
            o.d.partial_cmp(&self.d).unwrap_or(Ordering::Equal)
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Item { d: 0.0, v: source });
    while let Some(Item { d, v: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        if !pot[u as usize].is_finite() {
            continue;
        }
        for h in g.neighbors(u) {
            if !pot[h.to as usize].is_finite() {
                continue;
            }
            // Forward arcs of P1 are deleted from the residual graph.
            if p1_arcs.contains(&arc_key(u, h.edge)) {
                continue;
            }
            // Reverse arcs of P1 (we're traversing edge e against P1's
            // direction) have reduced cost 0; other arcs have
            // w + pot[u] − pot[to] ≥ 0.
            let (a, b, _) = g.edge(h.edge);
            let other_dir_from = if u == a { b } else { a };
            let reduced = if p1_arcs.contains(&arc_key(other_dir_from, h.edge)) {
                0.0
            } else {
                h.weight + pot[u as usize] - pot[h.to as usize]
            };
            let nd = d + reduced.max(0.0);
            if nd < dist[h.to as usize] {
                dist[h.to as usize] = nd;
                parent[h.to as usize] = Some((u, h.edge));
                heap.push(Item { d: nd, v: h.to });
            }
        }
    }
    if !dist[target as usize].is_finite() {
        ws.put_dist_buf(pot_buf);
        return vec![first];
    }

    // 3. Merge: arcs of P1 plus arcs of P2, with opposite arcs of the
    // same edge cancelling; then peel two paths off the merged arc set.
    // A BTreeMap keyed by (edge, direction) keeps every downstream
    // traversal in sorted-key order — the peeled path composition must
    // not depend on hash iteration order.
    let mut arcs: std::collections::BTreeMap<(EdgeId, u8), u32> = Default::default();
    for (i, &e) in first.edges.iter().enumerate() {
        *arcs.entry(arc_key(first.nodes[i], e)).or_default() += 1;
    }
    let mut v = target;
    while v != source {
        // lint: allow(unwrap-in-lib) dist[target] is finite, so every node on the parent chain was settled with a parent
        let (p, e) = parent[v as usize].expect("reached node has parent");
        let key = arc_key(p, e);
        let (eu, ev, _) = g.edge(e);
        let opposite = (e, if key.1 == 0 { 1 } else { 0 });
        let _ = (eu, ev);
        if let Some(c) = arcs.get_mut(&opposite) {
            // Cancel with P1's opposite-direction use of this edge.
            *c -= 1;
            if *c == 0 {
                arcs.remove(&opposite);
            }
        } else {
            *arcs.entry(key).or_default() += 1;
        }
        v = p;
    }

    // Build per-node outgoing arc lists from the merged set, in sorted
    // arc order (deterministic: `peel` pops these lists, so their order
    // decides how the two paths share the merged arcs).
    let mut out: std::collections::BTreeMap<NodeId, Vec<(NodeId, EdgeId, f64)>> =
        Default::default();
    for (&(e, dir), &count) in &arcs {
        let (u, v, w) = g.edge(e);
        let (from, to) = if dir == 0 { (u, v) } else { (v, u) };
        for _ in 0..count {
            out.entry(from).or_default().push((to, e, w));
        }
    }
    let mut peel = || -> Option<Path> {
        let mut nodes = vec![source];
        let mut edges = Vec::new();
        let mut total = 0.0;
        let mut cur = source;
        while cur != target {
            let list = out.get_mut(&cur)?;
            let (to, e, w) = list.pop()?;
            if list.is_empty() {
                out.remove(&cur);
            }
            nodes.push(to);
            edges.push(e);
            total += w;
            cur = to;
            if edges.len() > g.num_edges() {
                return None; // defensive: malformed arc set
            }
        }
        Some(Path {
            nodes,
            edges,
            total_weight: total,
        })
    };
    let mut paths: Vec<Path> = (0..2).filter_map(|_| peel()).collect();
    paths.sort_by(|a, b| a.total_weight.total_cmp(&b.total_weight));
    ws.put_dist_buf(pot_buf);
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::k_edge_disjoint_paths;

    /// The classic trap graph where greedy fails: the shortest path uses
    /// the middle edge that both disjoint routes need.
    ///
    /// ```text
    ///   0 --1-- 1 --1-- 3
    ///   |       |       |
    ///   2       2       2       shortest 0-1-3 (weight 2)
    ///   |       |       |
    ///   +------ 2 ------+       via 2: 0-2-3 (weight 4)
    /// ```
    fn trap() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(2, 3, 2.0);
        b.add_edge(1, 2, 0.1); // tempting shortcut that greedy takes
        b.build()
    }

    #[test]
    fn finds_two_disjoint_paths() {
        let g = trap();
        let paths = suurballe(&g, 0, 3);
        assert_eq!(paths.len(), 2);
        let mut used = std::collections::HashSet::new();
        for p in &paths {
            for e in &p.edges {
                assert!(used.insert(*e), "paths share edge {e}");
            }
            // Path well-formed.
            assert_eq!(p.nodes.first(), Some(&0));
            assert_eq!(p.nodes.last(), Some(&3));
        }
    }

    #[test]
    fn total_weight_not_worse_than_greedy() {
        let g = trap();
        let opt = suurballe(&g, 0, 3);
        let greedy = k_edge_disjoint_paths(&g, 0, 3, 2, None);
        assert_eq!(opt.len(), 2);
        let opt_total: f64 = opt.iter().map(|p| p.total_weight).sum();
        let greedy_total: f64 = greedy.iter().map(|p| p.total_weight).sum();
        if greedy.len() == 2 {
            assert!(opt_total <= greedy_total + 1e-9);
        }
    }

    #[test]
    fn single_path_when_bridge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let paths = suurballe(&g, 0, 2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn warm_workspace_matches_fresh() {
        let g = trap();
        let mut ws = DijkstraWorkspace::new();
        for (s, t) in [(0u32, 3u32), (1, 2), (0, 3)] {
            let fresh = suurballe(&g, s, t);
            let warm = suurballe_with(&g, s, t, &mut ws);
            assert_eq!(fresh, warm);
        }
    }

    #[test]
    fn unreachable_is_empty() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert!(suurballe(&g, 0, 2).is_empty());
    }

    #[test]
    fn parallel_edges_count_as_disjoint() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 2.0);
        let g = b.build();
        let paths = suurballe(&g, 0, 1);
        assert_eq!(paths.len(), 2);
        let total: f64 = paths.iter().map(|p| p.total_weight).sum();
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn beats_greedy_on_trap_when_greedy_gets_one() {
        // Graph where greedy's first path destroys the only second route.
        //      0 -1- 1 -1- 2
        //      0 -5- 3 -5- 2 and 1-3 cheap cross edge
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 10.0);
        b.add_edge(0, 3, 5.0);
        b.add_edge(3, 2, 5.0);
        b.add_edge(1, 3, 0.5);
        let g = b.build();
        // Greedy: shortest is 0-1-3-2 (6.5), which uses 1-3 and 3-2,
        // leaving only 0-3 dead-ended → second path 0-... check.
        let greedy = k_edge_disjoint_paths(&g, 0, 2, 2, None);
        let opt = suurballe(&g, 0, 2);
        assert_eq!(opt.len(), 2, "optimal pair exists");
        if greedy.len() == 2 {
            let gt: f64 = greedy.iter().map(|p| p.total_weight).sum();
            let ot: f64 = opt.iter().map(|p| p.total_weight).sum();
            assert!(ot <= gt + 1e-9);
        }
    }

    #[test]
    fn grid_pair_is_optimal() {
        // On a 3x3 unit grid corner-to-corner, two disjoint paths of
        // total weight 8 exist (4 + 4).
        let n = 3u32;
        let id = |r: u32, c: u32| r * n + c;
        let mut b = GraphBuilder::new(9);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.add_edge(id(r, c), id(r, c + 1), 1.0);
                }
                if r + 1 < n {
                    b.add_edge(id(r, c), id(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let paths = suurballe(&g, 0, 8);
        assert_eq!(paths.len(), 2);
        let total: f64 = paths.iter().map(|p| p.total_weight).sum();
        assert!((total - 8.0).abs() < 1e-9, "total {total}");
    }
}
