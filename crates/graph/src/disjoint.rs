//! k edge-disjoint shortest paths.
//!
//! The paper's throughput experiments route each city-pair's traffic over
//! `k` **edge-disjoint** shortest paths (k = 1 and 4), found the way
//! floodns does: compute the shortest path, remove its edges, and repeat.
//! This greedy scheme is not globally optimal (unlike Suurballe's), but it
//! is exactly what the paper's tooling uses, so we reproduce it; the
//! resulting sub-flows never share an edge, so max-min fairness can treat
//! them independently.

use crate::graph::{Graph, NodeId};
use crate::shortest::{DijkstraWorkspace, Path};

/// Find up to `k` edge-disjoint paths from `source` to `target`, shortest
/// first, by iteratively removing used edges.
///
/// Returns fewer than `k` paths (possibly zero) when the graph runs out of
/// edge-disjoint routes. `disabled` optionally pre-disables edges (e.g.
/// failed links); it is not modified.
pub fn k_edge_disjoint_paths(
    g: &Graph,
    source: NodeId,
    target: NodeId,
    k: usize,
    disabled: Option<&[bool]>,
) -> Vec<Path> {
    k_edge_disjoint_paths_with(
        g,
        source,
        target,
        k,
        disabled,
        &mut DijkstraWorkspace::new(),
    )
}

/// [`k_edge_disjoint_paths`] reusing the caller's warm workspace: all
/// SSSP buffers and the working edge mask are amortized across calls.
pub fn k_edge_disjoint_paths_with(
    g: &Graph,
    source: NodeId,
    target: NodeId,
    k: usize,
    disabled: Option<&[bool]>,
    ws: &mut DijkstraWorkspace,
) -> Vec<Path> {
    let mut mask = ws.take_mask(g.num_edges());
    if let Some(d) = disabled {
        // lint: allow(panic-reachable) caller contract: the disabled mask is indexed by edge id; a mismatch means it was built for a different graph
        assert_eq!(d.len(), g.num_edges());
        mask.copy_from_slice(d);
    }
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let found = ws
            .run(g, source, Some(&mask), Some(target))
            .extract_path(target);
        match found {
            Some(p) => {
                for &e in &p.edges {
                    mask[e as usize] = true;
                }
                out.push(p);
            }
            None => break,
        }
    }
    ws.put_mask(mask);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use std::collections::HashSet;

    /// Two disjoint routes 0→3: 0-1-3 (cost 2) and 0-2-3 (cost 4).
    fn two_route() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(2, 3, 2.0);
        b.build()
    }

    #[test]
    fn finds_paths_shortest_first() {
        let g = two_route();
        let paths = k_edge_disjoint_paths(&g, 0, 3, 4, None);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].total_weight, 2.0);
        assert_eq!(paths[1].total_weight, 4.0);
    }

    #[test]
    fn paths_share_no_edges() {
        let g = two_route();
        let paths = k_edge_disjoint_paths(&g, 0, 3, 4, None);
        let mut seen = HashSet::new();
        for p in &paths {
            for e in &p.edges {
                assert!(seen.insert(*e), "edge {e} reused");
            }
        }
    }

    #[test]
    fn k_limits_path_count() {
        let g = two_route();
        assert_eq!(k_edge_disjoint_paths(&g, 0, 3, 1, None).len(), 1);
    }

    #[test]
    fn respects_predisabled_edges() {
        let g = two_route();
        let mut disabled = vec![false; g.num_edges()];
        disabled[0] = true; // kill 0-1
        let paths = k_edge_disjoint_paths(&g, 0, 3, 4, Some(&disabled));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 2, 3]);
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert!(k_edge_disjoint_paths(&g, 0, 2, 3, None).is_empty());
    }

    #[test]
    fn shared_bottleneck_limits_disjoint_count() {
        // Diamond whose routes converge on one bridge edge: only one
        // edge-disjoint path can exist.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 4, 1.0); // bridge
        let g = b.build();
        let paths = k_edge_disjoint_paths(&g, 0, 4, 4, None);
        assert_eq!(paths.len(), 1, "bridge edge allows only one disjoint path");
    }

    #[test]
    fn warm_workspace_matches_fresh() {
        let g = two_route();
        let mut ws = DijkstraWorkspace::new();
        for target in [3u32, 2, 1] {
            let fresh = k_edge_disjoint_paths(&g, 0, target, 4, None);
            let warm = k_edge_disjoint_paths_with(&g, 0, target, 4, None, &mut ws);
            assert_eq!(fresh, warm);
        }
        assert!(ws.runs() >= 3);
    }

    #[test]
    fn grid_supports_multiple_disjoint_paths() {
        // 4x4 grid: corner-to-corner supports exactly 2 edge-disjoint paths
        // (limited by corner degree).
        let n = 4u32;
        let id = |r: u32, c: u32| r * n + c;
        let mut b = GraphBuilder::new((n * n) as usize);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.add_edge(id(r, c), id(r, c + 1), 1.0);
                }
                if r + 1 < n {
                    b.add_edge(id(r, c), id(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let paths = k_edge_disjoint_paths(&g, 0, n * n - 1, 4, None);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.total_weight, 6.0, "grid corner distance is 6");
        }
    }
}
