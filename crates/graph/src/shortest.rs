//! Single-source shortest paths (Dijkstra) with optional edge masks.
//!
//! Two entry points:
//!
//! * The free functions [`dijkstra`] / [`dijkstra_with_mask`] allocate a
//!   fresh [`DijkstraWorkspace`] per call and materialize a
//!   [`ShortestPaths`] — convenient for one-shot queries and tests.
//! * A long-lived [`DijkstraWorkspace`] amortizes every buffer (distance,
//!   parent, settled, heap) across runs; clearing is generation-stamped,
//!   so resetting between runs costs O(nodes touched), not O(n). The hot
//!   experiment loops keep one workspace per worker thread.

use crate::graph::{EdgeId, Graph, NodeId};
use leo_util::telemetry::Counter;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Telemetry: total Dijkstra runs (plain + masked) across the process.
static DIJKSTRA_CALLS: Counter = Counter::new("dijkstra_calls");
/// Telemetry: nodes settled across all Dijkstra runs.
static DIJKSTRA_SETTLED: Counter = Counter::new("dijkstra_nodes_settled");
/// Telemetry: runs that reused a warm workspace (every run after the
/// first on a given [`DijkstraWorkspace`]).
static WORKSPACE_REUSES: Counter = Counter::new("workspace_reuses");

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source node.
    pub source: NodeId,
    /// `dist[v]` = shortest distance from the source, `f64::INFINITY` if
    /// unreached.
    ///
    /// When the run early-exited on a target, only nodes settled before
    /// the target report a (correct) finite distance; nodes that were
    /// merely queued report `INFINITY`, never a stale upper bound.
    pub dist: Vec<f64>,
    /// `parent_edge[v]` = edge id used to reach `v` on the shortest path,
    /// `EdgeId::MAX` for the source and unreached nodes.
    pub parent_edge: Vec<EdgeId>,
    /// `parent_node[v]` = predecessor of `v`, `NodeId::MAX` if none.
    pub parent_node: Vec<NodeId>,
}

impl ShortestPaths {
    /// True iff `v` was reached (settled with a shortest distance).
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize].is_finite()
    }
}

/// A path: node sequence plus the edges connecting them and total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Edge ids, one per hop (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Sum of edge weights.
    pub total_weight: f64,
}

impl Path {
    /// Number of hops (edges) in the path.
    pub fn num_hops(&self) -> usize {
        self.edges.len()
    }
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance: reverse the comparison. Distances are
        // finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for repeated Dijkstra runs.
///
/// Entries are validated with a per-run generation stamp: `dist[v]`,
/// `parent_edge[v]`, `parent_node[v]`, and `settled[v]` are meaningful
/// only where `stamp[v]` equals the current generation, so starting a new
/// run is a counter bump plus a heap clear — no O(n) refill. The arrays
/// grow monotonically to the largest graph seen and are reused across
/// graphs of different sizes.
///
/// A workspace is plain mutable state: keep one per thread (the
/// experiment fan-outs create one per `parallel_map` worker) and the hot
/// loop stays lock-free and allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    /// `stamp[v] == gen` iff `v` was touched by the current run.
    stamp: Vec<u32>,
    /// `target_stamp[v] == gen` iff `v` is a pending early-exit target of
    /// the current run (see [`DijkstraWorkspace::run_multi`]).
    target_stamp: Vec<u32>,
    /// Current generation; bumped by every run, never 0 after the first.
    gen: u32,
    dist: Vec<f64>,
    parent_edge: Vec<EdgeId>,
    parent_node: Vec<NodeId>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapItem>,
    /// Loanable scratch mask, used by the multi-path algorithms.
    mask_buf: Vec<bool>,
    /// Loanable scratch distances (Suurballe potentials).
    dist_buf: Vec<f64>,
    /// Node count of the most recent run's graph.
    active_n: usize,
    /// Source of the most recent run.
    source: NodeId,
    /// Completed runs on this workspace.
    runs: u64,
}

impl DijkstraWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed runs on this workspace.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Bump the generation and size buffers for an `n`-node graph.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.target_stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.parent_edge.resize(n, EdgeId::MAX);
            self.parent_node.resize(n, NodeId::MAX);
            self.settled.resize(n, false);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // u32 wrap: stale stamps could collide with a reused
            // generation, so pay one full clear every 2^32 runs.
            self.stamp.fill(0);
            self.target_stamp.fill(0);
            self.gen = 1;
        }
        self.heap.clear();
        self.active_n = n;
    }

    /// Run Dijkstra from `source`, skipping edges marked `true` in
    /// `disabled` and optionally stopping once `target` is settled.
    ///
    /// Returns a [`SsspView`] borrowing this workspace; the result stays
    /// readable (via [`DijkstraWorkspace::view`]) until the next run.
    pub fn run(
        &mut self,
        g: &Graph,
        source: NodeId,
        disabled: Option<&[bool]>,
        target: Option<NodeId>,
    ) -> SsspView<'_> {
        match target {
            Some(t) => self.run_core(g, source, disabled, Some(std::slice::from_ref(&t))),
            None => self.run_core(g, source, disabled, None),
        }
    }

    /// Like [`DijkstraWorkspace::run`] with a *set* of early-exit targets:
    /// the run stops once every node in `targets` is settled (duplicates
    /// are fine). Distances and paths to the targets are exact; other
    /// nodes follow the usual settled-only contract. An empty `targets`
    /// slice disables early exit (same as `target: None`).
    ///
    /// This is the experiment-loop shape: one source city, a handful of
    /// destination cities, and a constellation graph whose far side never
    /// needs settling.
    pub fn run_multi(
        &mut self,
        g: &Graph,
        source: NodeId,
        disabled: Option<&[bool]>,
        targets: &[NodeId],
    ) -> SsspView<'_> {
        self.run_core(
            g,
            source,
            disabled,
            if targets.is_empty() {
                None
            } else {
                Some(targets)
            },
        )
    }

    // lint: hot-path
    fn run_core(
        &mut self,
        g: &Graph,
        source: NodeId,
        disabled: Option<&[bool]>,
        targets: Option<&[NodeId]>,
    ) -> SsspView<'_> {
        let n = g.num_nodes();
        assert!((source as usize) < n, "source out of range");
        if let Some(d) = disabled {
            assert_eq!(d.len(), g.num_edges(), "mask length must equal edge count");
        }
        DIJKSTRA_CALLS.add(1);
        if self.runs > 0 {
            WORKSPACE_REUSES.add(1);
        }
        self.runs += 1;
        self.begin(n);
        let gen = self.gen;
        // Pending distinct early-exit targets; `None` = run to exhaustion.
        let mut pending = targets.map(|ts| {
            let mut distinct = 0usize;
            for &t in ts {
                let ti = t as usize;
                assert!(ti < n, "target out of range");
                if self.target_stamp[ti] != gen {
                    self.target_stamp[ti] = gen;
                    distinct += 1;
                }
            }
            distinct
        });
        let mut settled_count = 0u64;
        let si = source as usize;
        self.stamp[si] = gen;
        self.dist[si] = 0.0;
        self.parent_edge[si] = EdgeId::MAX;
        self.parent_node[si] = NodeId::MAX;
        self.settled[si] = false;
        self.heap.push(HeapItem {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapItem { dist: d, node: u }) = self.heap.pop() {
            let ui = u as usize;
            if self.settled[ui] {
                continue;
            }
            self.settled[ui] = true;
            settled_count += 1;
            if let Some(p) = pending.as_mut() {
                if self.target_stamp[ui] == gen {
                    *p -= 1;
                    if *p == 0 {
                        break;
                    }
                }
            }
            for h in g.neighbors(u) {
                if let Some(mask) = disabled {
                    if mask[h.edge as usize] {
                        continue;
                    }
                }
                let nd = d + h.weight;
                let vi = h.to as usize;
                let cur = if self.stamp[vi] == gen {
                    self.dist[vi]
                } else {
                    f64::INFINITY
                };
                if nd < cur {
                    self.stamp[vi] = gen;
                    self.dist[vi] = nd;
                    self.parent_edge[vi] = h.edge;
                    self.parent_node[vi] = u;
                    self.settled[vi] = false;
                    self.heap.push(HeapItem {
                        dist: nd,
                        node: h.to,
                    });
                }
            }
        }
        DIJKSTRA_SETTLED.add(settled_count);
        self.source = source;
        self.view()
    }

    /// A view of the most recent run's result (empty before any run).
    pub fn view(&self) -> SsspView<'_> {
        SsspView { ws: self }
    }

    /// Borrow the scratch edge mask, cleared and sized to `len`. Return
    /// it with [`DijkstraWorkspace::put_mask`] so the allocation is
    /// reused; taking it twice without returning just allocates afresh.
    pub fn take_mask(&mut self, len: usize) -> Vec<bool> {
        let mut m = std::mem::take(&mut self.mask_buf);
        m.clear();
        m.resize(len, false);
        m
    }

    /// Return a mask borrowed with [`DijkstraWorkspace::take_mask`].
    pub fn put_mask(&mut self, m: Vec<bool>) {
        self.mask_buf = m;
    }

    /// Borrow the scratch distance buffer (cleared). Return it with
    /// [`DijkstraWorkspace::put_dist_buf`].
    pub fn take_dist_buf(&mut self) -> Vec<f64> {
        let mut d = std::mem::take(&mut self.dist_buf);
        d.clear();
        d
    }

    /// Return the buffer borrowed with
    /// [`DijkstraWorkspace::take_dist_buf`].
    pub fn put_dist_buf(&mut self, d: Vec<f64>) {
        self.dist_buf = d;
    }

    /// Test hook: force the generation counter near the wrap point.
    #[cfg(test)]
    fn set_gen_for_test(&mut self, gen: u32) {
        self.gen = gen;
    }
}

/// Borrowed result of the most recent [`DijkstraWorkspace::run`].
///
/// Same contract as [`ShortestPaths`] without the materialization:
/// distances are reported only for **settled** nodes, so an early-exited
/// run never exposes a stale queued-but-unrelaxed upper bound.
#[derive(Clone, Copy)]
pub struct SsspView<'a> {
    ws: &'a DijkstraWorkspace,
}

impl SsspView<'_> {
    /// Source node of the run.
    pub fn source(&self) -> NodeId {
        self.ws.source
    }

    /// True iff `v` was settled with its shortest distance.
    pub fn reached(&self, v: NodeId) -> bool {
        let vi = v as usize;
        vi < self.ws.active_n && self.ws.stamp[vi] == self.ws.gen && self.ws.settled[vi]
    }

    /// Shortest distance to `v`, or `INFINITY` if `v` was not settled.
    pub fn dist(&self, v: NodeId) -> f64 {
        if self.reached(v) {
            self.ws.dist[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// Extract the path to `target`, or `None` if it was not settled.
    pub fn extract_path(&self, target: NodeId) -> Option<Path> {
        if !self.reached(target) {
            return None;
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut v = target;
        while v != self.ws.source {
            let e = self.ws.parent_edge[v as usize];
            let p = self.ws.parent_node[v as usize];
            debug_assert!(e != EdgeId::MAX && p != NodeId::MAX);
            edges.push(e);
            nodes.push(p);
            v = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path {
            nodes,
            edges,
            total_weight: self.ws.dist[target as usize],
        })
    }

    /// Overwrite `out` with the per-node distances (`INFINITY` where
    /// unsettled), sized to the run's graph.
    pub fn write_dists(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.ws.active_n);
        for v in 0..self.ws.active_n {
            let d = if self.ws.stamp[v] == self.ws.gen && self.ws.settled[v] {
                self.ws.dist[v]
            } else {
                f64::INFINITY
            };
            out.push(d);
        }
    }

    /// Materialize an owned [`ShortestPaths`] (allocates three `n`-vecs).
    pub fn to_shortest_paths(&self) -> ShortestPaths {
        let n = self.ws.active_n;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent_edge = vec![EdgeId::MAX; n];
        let mut parent_node = vec![NodeId::MAX; n];
        for v in 0..n {
            if self.ws.stamp[v] == self.ws.gen && self.ws.settled[v] {
                dist[v] = self.ws.dist[v];
                parent_edge[v] = self.ws.parent_edge[v];
                parent_node[v] = self.ws.parent_node[v];
            }
        }
        ShortestPaths {
            source: self.ws.source,
            dist,
            parent_edge,
            parent_node,
        }
    }
}

thread_local! {
    static THREAD_WS: std::cell::RefCell<DijkstraWorkspace> =
        std::cell::RefCell::new(DijkstraWorkspace::new());
}

/// Run `f` with this thread's shared [`DijkstraWorkspace`] — a warm
/// workspace for one-shot call sites that don't manage their own.
///
/// Re-entrant use (calling `with_thread_workspace` from inside `f`)
/// panics on the `RefCell` borrow; pass the workspace down instead.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut DijkstraWorkspace) -> R) -> R {
    THREAD_WS.with(|ws| f(&mut ws.borrow_mut()))
}

/// Dijkstra from `source` over all edges.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    DijkstraWorkspace::new()
        .run(g, source, None, None)
        .to_shortest_paths()
}

/// Dijkstra from `source`, ignoring edges whose id is marked `true` in
/// `disabled` (a bitmask indexed by [`EdgeId`]).
///
/// Used for k-edge-disjoint path computation and link-failure injection.
/// An optional `target` enables early exit once the target is settled; in
/// that case only nodes settled before the exit report finite distances
/// (see [`ShortestPaths::dist`]).
pub fn dijkstra_with_mask(
    g: &Graph,
    source: NodeId,
    disabled: &[bool],
    target: Option<NodeId>,
) -> ShortestPaths {
    DijkstraWorkspace::new()
        .run(g, source, Some(disabled), target)
        .to_shortest_paths()
}

/// Extract the path from the SSSP tree to `target`, or `None` if
/// unreached.
pub fn extract_path(sp: &ShortestPaths, target: NodeId) -> Option<Path> {
    if !sp.reached(target) {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut v = target;
    while v != sp.source {
        let e = sp.parent_edge[v as usize];
        let p = sp.parent_node[v as usize];
        debug_assert!(e != EdgeId::MAX && p != NodeId::MAX);
        edges.push(e);
        nodes.push(p);
        v = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path {
        nodes,
        edges,
        total_weight: sp.dist[target as usize],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 --1-- 1 --1-- 2
    ///  \------5------/
    fn small() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        b.build()
    }

    #[test]
    fn prefers_two_hop_path() {
        let g = small();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        let p = extract_path(&sp, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 2]);
        assert_eq!(p.num_hops(), 2);
        assert_eq!(p.total_weight, 2.0);
    }

    #[test]
    fn masked_edge_forces_detour() {
        let g = small();
        let mut disabled = vec![false; g.num_edges()];
        disabled[0] = true; // kill 0-1
        let sp = dijkstra_with_mask(&g, 0, &disabled, None);
        assert_eq!(sp.dist[2], 5.0);
        let p = extract_path(&sp, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 2]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        // 2,3 disconnected from 0,1; 2-3 connected.
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert!(!sp.reached(2));
        assert!(extract_path(&sp, 3).is_none());
    }

    #[test]
    fn source_path_is_trivial() {
        let g = small();
        let sp = dijkstra(&g, 1);
        let p = extract_path(&sp, 1).unwrap();
        assert_eq!(p.nodes, vec![1]);
        assert!(p.edges.is_empty());
        assert_eq!(p.total_weight, 0.0);
    }

    #[test]
    fn early_exit_still_correct_for_target() {
        let g = small();
        let sp = dijkstra_with_mask(&g, 0, &[false; 3], Some(2));
        assert_eq!(sp.dist[2], 2.0);
        assert!(extract_path(&sp, 2).is_some());
    }

    /// Regression: before the settled-only contract, an early-exited run
    /// reported `dist[v]` for queued-but-unsettled nodes as whatever
    /// upper bound had been relaxed so far — here 10.0 for node 2, whose
    /// true distance is 2.0 — and `reached(2)` claimed true.
    #[test]
    fn early_exit_does_not_report_stale_distances() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 10.0); // relaxes 2 to 10.0 before the exit
        b.add_edge(1, 2, 1.0); // true shortest: 0-1-2 = 2.0
        let g = b.build();
        let sp = dijkstra_with_mask(&g, 0, &[false; 3], Some(1));
        assert_eq!(sp.dist[1], 1.0, "target distance is exact");
        assert!(
            !sp.reached(2),
            "unsettled node must not be reported as reached (dist was {})",
            sp.dist[2]
        );
        assert!(sp.dist[2].is_infinite(), "no stale upper bound exposed");
        assert!(extract_path(&sp, 2).is_none());
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.0);
        b.add_edge(1, 2, 0.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 0.0);
        assert_eq!(extract_path(&sp, 2).unwrap().num_hops(), 2);
    }

    #[test]
    fn grid_distances_match_manhattan() {
        // 5x5 unit grid: distance == Manhattan distance.
        let n = 5;
        let id = |r: u32, c: u32| r * n + c;
        let mut b = GraphBuilder::new((n * n) as usize);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.add_edge(id(r, c), id(r, c + 1), 1.0);
                }
                if r + 1 < n {
                    b.add_edge(id(r, c), id(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let sp = dijkstra(&g, 0);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(sp.dist[id(r, c) as usize], (r + c) as f64);
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_across_graphs() {
        // One workspace reused across graphs of different sizes must
        // agree with fresh runs everywhere — including after shrinking.
        let graphs = [small(), two_cliques(), small()];
        let mut ws = DijkstraWorkspace::new();
        for g in &graphs {
            for s in 0..g.num_nodes() as NodeId {
                let fresh = dijkstra(g, s);
                let view = ws.run(g, s, None, None);
                for v in 0..g.num_nodes() as NodeId {
                    assert_eq!(view.dist(v), fresh.dist[v as usize], "src {s} node {v}");
                    assert_eq!(view.reached(v), fresh.reached(v));
                    assert_eq!(
                        view.extract_path(v).map(|p| p.nodes),
                        extract_path(&fresh, v).map(|p| p.nodes)
                    );
                }
            }
        }
        assert_eq!(ws.runs(), 3 + 8 + 3);
    }

    /// 8 nodes: clique {0..3} and clique {4..7}, disconnected.
    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j, (i + j + 1) as f64);
                }
            }
        }
        b.build()
    }

    #[test]
    fn generation_wrap_clears_stamps() {
        let g = small();
        let mut ws = DijkstraWorkspace::new();
        // Warm up so every stamp slot holds a nonzero generation.
        ws.run(&g, 0, None, None);
        // Jump to the wrap point: next run bumps u32::MAX -> 0, which
        // must trigger the full stamp clear, not treat slots stamped
        // with the warm-up generation as touched.
        ws.set_gen_for_test(u32::MAX);
        let view = ws.run(&g, 1, None, None);
        assert_eq!(view.dist(0), 1.0);
        assert_eq!(view.dist(2), 1.0);
        let view = ws.run(&g, 0, None, None);
        assert_eq!(view.dist(2), 2.0);
    }

    #[test]
    fn view_write_dists_and_materialize_agree() {
        let g = two_cliques();
        let mut ws = DijkstraWorkspace::new();
        let view = ws.run(&g, 1, None, None);
        let sp = view.to_shortest_paths();
        let mut dists = Vec::new();
        view.write_dists(&mut dists);
        assert_eq!(dists.len(), g.num_nodes());
        for (a, b) in dists.iter().zip(&sp.dist) {
            assert_eq!(a, b);
        }
        assert!(!sp.reached(5), "other clique unreached");
    }

    #[test]
    fn mask_and_dist_buf_loans_round_trip() {
        let g = small();
        let mut ws = DijkstraWorkspace::new();
        let mut mask = ws.take_mask(g.num_edges());
        assert_eq!(mask, vec![false; 3]);
        mask[0] = true;
        let view = ws.run(&g, 0, Some(&mask), None);
        assert_eq!(view.dist(2), 5.0);
        ws.put_mask(mask);
        // Returned mask is re-cleared on the next take.
        let mask2 = ws.take_mask(2);
        assert_eq!(mask2, vec![false; 2]);
        ws.put_mask(mask2);
        let mut buf = ws.take_dist_buf();
        ws.view().write_dists(&mut buf);
        assert_eq!(buf[2], 5.0);
        assert_eq!(buf[1], 6.0, "0-1 masked, so 1 is reached via 0-2-1");
        ws.put_dist_buf(buf);
    }

    #[test]
    fn multi_target_early_exit_settles_all_targets() {
        // Line graph 0-1-2-3-4: targets {1, 3} must both be exact even
        // though the run may stop before settling 4.
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let mut ws = DijkstraWorkspace::new();
        let view = ws.run_multi(&g, 0, None, &[3, 1]);
        assert_eq!(view.dist(1), 1.0);
        assert_eq!(view.dist(3), 3.0);
        assert!(view.extract_path(3).is_some());
        assert!(
            !view.reached(4),
            "node past the farthest target must not be settled"
        );
        // Duplicates and the source itself are fine.
        let view = ws.run_multi(&g, 2, None, &[2, 2, 4, 4]);
        assert_eq!(view.dist(2), 0.0);
        assert_eq!(view.dist(4), 2.0);
        // Empty target set means a full run.
        let view = ws.run_multi(&g, 0, None, &[]);
        for v in 0..5 {
            assert_eq!(view.dist(v), v as f64);
        }
    }

    #[test]
    fn multi_target_matches_full_run_on_targets() {
        let g = two_cliques();
        let mut ws = DijkstraWorkspace::new();
        for s in 0..g.num_nodes() as NodeId {
            let fresh = dijkstra(&g, s);
            let targets: Vec<NodeId> = (0..g.num_nodes() as NodeId).step_by(2).collect();
            let view = ws.run_multi(&g, s, None, &targets);
            for &t in &targets {
                // Unreachable targets can never settle; the run still
                // terminates (heap exhaustion) and reports INFINITY.
                assert_eq!(view.dist(t), fresh.dist[t as usize], "src {s} target {t}");
            }
        }
    }

    #[test]
    fn thread_workspace_is_warm_across_calls() {
        let g = small();
        let runs_before = with_thread_workspace(|ws| ws.runs());
        let d = with_thread_workspace(|ws| ws.run(&g, 0, None, None).dist(2));
        assert_eq!(d, 2.0);
        let runs_after = with_thread_workspace(|ws| ws.runs());
        assert_eq!(runs_after, runs_before + 1);
    }
}
