//! Single-source shortest paths (Dijkstra) with optional edge masks.
//!
//! Two entry points:
//!
//! * The free functions [`dijkstra`] / [`dijkstra_with_mask`] allocate a
//!   fresh [`DijkstraWorkspace`] per call and materialize a
//!   [`ShortestPaths`] — convenient for one-shot queries and tests.
//! * A long-lived [`DijkstraWorkspace`] amortizes every buffer (distance,
//!   parent, settled, heap) across runs; clearing is generation-stamped,
//!   so resetting between runs costs O(nodes touched), not O(n). The hot
//!   experiment loops keep one workspace per worker thread.

use crate::graph::{EdgeId, Graph, NodeId};
use leo_util::telemetry::Counter;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Telemetry: total Dijkstra runs (plain + masked) across the process.
static DIJKSTRA_CALLS: Counter = Counter::new("dijkstra_calls");
/// Telemetry: nodes settled across all Dijkstra runs.
static DIJKSTRA_SETTLED: Counter = Counter::new("dijkstra_nodes_settled");
/// Telemetry: runs that reused a warm workspace (every run after the
/// first on a given [`DijkstraWorkspace`]).
static WORKSPACE_REUSES: Counter = Counter::new("workspace_reuses");
/// Telemetry: incremental [`SptWorkspace::apply`] repairs.
static SPT_REPAIRS: Counter = Counter::new("spt_repairs");
/// Telemetry: full [`SptWorkspace::rebuild`] runs (chunk starts and any
/// caller-decided fallback from the incremental path).
static SPT_FULL_FALLBACKS: Counter = Counter::new("spt_full_fallbacks");
/// Telemetry: delta entries (removed + reweighted) consumed by
/// [`SptWorkspace::apply`].
static DELTA_EDGES_APPLIED: Counter = Counter::new("delta_edges_applied");
/// Telemetry: [`SptWorkspace::apply_for_targets`] repairs that stopped
/// the Dial drain early because every queried target had settled.
static SPT_EARLY_EXITS: Counter = Counter::new("spt_early_exits");

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source node.
    pub source: NodeId,
    /// `dist[v]` = shortest distance from the source, `f64::INFINITY` if
    /// unreached.
    ///
    /// When the run early-exited on a target, only nodes settled before
    /// the target report a (correct) finite distance; nodes that were
    /// merely queued report `INFINITY`, never a stale upper bound.
    pub dist: Vec<f64>,
    /// `parent_edge[v]` = edge id used to reach `v` on the shortest path,
    /// `EdgeId::MAX` for the source and unreached nodes.
    pub parent_edge: Vec<EdgeId>,
    /// `parent_node[v]` = predecessor of `v`, `NodeId::MAX` if none.
    pub parent_node: Vec<NodeId>,
}

impl ShortestPaths {
    /// True iff `v` was reached (settled with a shortest distance).
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize].is_finite()
    }
}

/// A path: node sequence plus the edges connecting them and total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Edge ids, one per hop (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Sum of edge weights.
    pub total_weight: f64,
}

impl Path {
    /// Number of hops (edges) in the path.
    pub fn num_hops(&self) -> usize {
        self.edges.len()
    }
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance: reverse the comparison. Distances are
        // finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for repeated Dijkstra runs.
///
/// Entries are validated with a per-run generation stamp: `dist[v]`,
/// `parent_edge[v]`, `parent_node[v]`, and `settled[v]` are meaningful
/// only where `stamp[v]` equals the current generation, so starting a new
/// run is a counter bump plus a heap clear — no O(n) refill. The arrays
/// grow monotonically to the largest graph seen and are reused across
/// graphs of different sizes.
///
/// A workspace is plain mutable state: keep one per thread (the
/// experiment fan-outs create one per `parallel_map` worker) and the hot
/// loop stays lock-free and allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    /// `stamp[v] == gen` iff `v` was touched by the current run.
    stamp: Vec<u32>,
    /// `target_stamp[v] == gen` iff `v` is a pending early-exit target of
    /// the current run (see [`DijkstraWorkspace::run_multi`]).
    target_stamp: Vec<u32>,
    /// Current generation; bumped by every run, never 0 after the first.
    gen: u32,
    dist: Vec<f64>,
    parent_edge: Vec<EdgeId>,
    parent_node: Vec<NodeId>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapItem>,
    /// Loanable scratch mask, used by the multi-path algorithms.
    mask_buf: Vec<bool>,
    /// Loanable scratch distances (Suurballe potentials).
    dist_buf: Vec<f64>,
    /// Node count of the most recent run's graph.
    active_n: usize,
    /// Source of the most recent run.
    source: NodeId,
    /// Completed runs on this workspace.
    runs: u64,
}

impl DijkstraWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed runs on this workspace.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Bump the generation and size buffers for an `n`-node graph.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            // lint: allow(hot-path-alloc) grows once to the peak node count, then the guard above makes every resize a no-op
            self.stamp.resize(n, 0);
            // lint: allow(hot-path-alloc) grows once to the peak node count, then the guard above makes every resize a no-op
            self.target_stamp.resize(n, 0);
            // lint: allow(hot-path-alloc) grows once to the peak node count, then the guard above makes every resize a no-op
            self.dist.resize(n, f64::INFINITY);
            // lint: allow(hot-path-alloc) grows once to the peak node count, then the guard above makes every resize a no-op
            self.parent_edge.resize(n, EdgeId::MAX);
            // lint: allow(hot-path-alloc) grows once to the peak node count, then the guard above makes every resize a no-op
            self.parent_node.resize(n, NodeId::MAX);
            // lint: allow(hot-path-alloc) grows once to the peak node count, then the guard above makes every resize a no-op
            self.settled.resize(n, false);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // u32 wrap: stale stamps could collide with a reused
            // generation, so pay one full clear every 2^32 runs.
            self.stamp.fill(0);
            self.target_stamp.fill(0);
            self.gen = 1;
        }
        self.heap.clear();
        self.active_n = n;
    }

    /// Run Dijkstra from `source`, skipping edges marked `true` in
    /// `disabled` and optionally stopping once `target` is settled.
    ///
    /// Returns a [`SsspView`] borrowing this workspace; the result stays
    /// readable (via [`DijkstraWorkspace::view`]) until the next run.
    pub fn run(
        &mut self,
        g: &Graph,
        source: NodeId,
        disabled: Option<&[bool]>,
        target: Option<NodeId>,
    ) -> SsspView<'_> {
        match target {
            Some(t) => self.run_core(g, source, disabled, Some(std::slice::from_ref(&t))),
            None => self.run_core(g, source, disabled, None),
        }
    }

    /// Like [`DijkstraWorkspace::run`] with a *set* of early-exit targets:
    /// the run stops once every node in `targets` is settled (duplicates
    /// are fine). Distances and paths to the targets are exact; other
    /// nodes follow the usual settled-only contract. An empty `targets`
    /// slice disables early exit (same as `target: None`).
    ///
    /// This is the experiment-loop shape: one source city, a handful of
    /// destination cities, and a constellation graph whose far side never
    /// needs settling.
    pub fn run_multi(
        &mut self,
        g: &Graph,
        source: NodeId,
        disabled: Option<&[bool]>,
        targets: &[NodeId],
    ) -> SsspView<'_> {
        self.run_core(
            g,
            source,
            disabled,
            if targets.is_empty() {
                None
            } else {
                Some(targets)
            },
        )
    }

    // lint: hot-path
    fn run_core(
        &mut self,
        g: &Graph,
        source: NodeId,
        disabled: Option<&[bool]>,
        targets: Option<&[NodeId]>,
    ) -> SsspView<'_> {
        let n = g.num_nodes();
        // Release builds keep equivalent protection via the slice bounds
        // checks on `stamp`/`dist` indexing below; the named asserts are
        // kept for debug/test builds where the message matters.
        debug_assert!((source as usize) < n, "source out of range");
        if let Some(d) = disabled {
            debug_assert_eq!(d.len(), g.num_edges(), "mask length must equal edge count");
        }
        DIJKSTRA_CALLS.add(1);
        if self.runs > 0 {
            WORKSPACE_REUSES.add(1);
        }
        self.runs += 1;
        self.begin(n);
        let gen = self.gen;
        // Pending distinct early-exit targets; `None` = run to exhaustion.
        let mut pending = targets.map(|ts| {
            let mut distinct = 0usize;
            for &t in ts {
                let ti = t as usize;
                debug_assert!(ti < n, "target out of range"); // release: target_stamp[ti] bounds-checks
                if self.target_stamp[ti] != gen {
                    self.target_stamp[ti] = gen;
                    distinct += 1;
                }
            }
            distinct
        });
        let mut settled_count = 0u64;
        let si = source as usize;
        self.stamp[si] = gen;
        self.dist[si] = 0.0;
        self.parent_edge[si] = EdgeId::MAX;
        self.parent_node[si] = NodeId::MAX;
        self.settled[si] = false;
        self.heap.push(HeapItem {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapItem { dist: d, node: u }) = self.heap.pop() {
            let ui = u as usize;
            if self.settled[ui] {
                continue;
            }
            self.settled[ui] = true;
            settled_count += 1;
            if let Some(p) = pending.as_mut() {
                if self.target_stamp[ui] == gen {
                    *p -= 1;
                    if *p == 0 {
                        break;
                    }
                }
            }
            for h in g.neighbors(u) {
                if let Some(mask) = disabled {
                    if mask[h.edge as usize] {
                        continue;
                    }
                }
                let nd = d + h.weight;
                let vi = h.to as usize;
                let cur = if self.stamp[vi] == gen {
                    self.dist[vi]
                } else {
                    f64::INFINITY
                };
                if nd < cur {
                    self.stamp[vi] = gen;
                    self.dist[vi] = nd;
                    self.parent_edge[vi] = h.edge;
                    self.parent_node[vi] = u;
                    self.settled[vi] = false;
                    self.heap.push(HeapItem {
                        dist: nd,
                        node: h.to,
                    });
                }
            }
        }
        DIJKSTRA_SETTLED.add(settled_count);
        self.source = source;
        self.view()
    }

    /// A view of the most recent run's result (empty before any run).
    pub fn view(&self) -> SsspView<'_> {
        SsspView { ws: self }
    }

    /// Borrow the scratch edge mask, cleared and sized to `len`. Return
    /// it with [`DijkstraWorkspace::put_mask`] so the allocation is
    /// reused; taking it twice without returning just allocates afresh.
    pub fn take_mask(&mut self, len: usize) -> Vec<bool> {
        let mut m = std::mem::take(&mut self.mask_buf);
        m.clear();
        m.resize(len, false);
        m
    }

    /// Return a mask borrowed with [`DijkstraWorkspace::take_mask`].
    pub fn put_mask(&mut self, m: Vec<bool>) {
        self.mask_buf = m;
    }

    /// Borrow the scratch distance buffer (cleared). Return it with
    /// [`DijkstraWorkspace::put_dist_buf`].
    pub fn take_dist_buf(&mut self) -> Vec<f64> {
        let mut d = std::mem::take(&mut self.dist_buf);
        d.clear();
        d
    }

    /// Return the buffer borrowed with
    /// [`DijkstraWorkspace::take_dist_buf`].
    pub fn put_dist_buf(&mut self, d: Vec<f64>) {
        self.dist_buf = d;
    }

    /// Test hook: force the generation counter near the wrap point.
    #[cfg(test)]
    fn set_gen_for_test(&mut self, gen: u32) {
        self.gen = gen;
    }
}

/// Borrowed result of the most recent [`DijkstraWorkspace::run`].
///
/// Same contract as [`ShortestPaths`] without the materialization:
/// distances are reported only for **settled** nodes, so an early-exited
/// run never exposes a stale queued-but-unrelaxed upper bound.
#[derive(Clone, Copy)]
pub struct SsspView<'a> {
    ws: &'a DijkstraWorkspace,
}

impl SsspView<'_> {
    /// Source node of the run.
    pub fn source(&self) -> NodeId {
        self.ws.source
    }

    /// True iff `v` was settled with its shortest distance.
    pub fn reached(&self, v: NodeId) -> bool {
        let vi = v as usize;
        vi < self.ws.active_n && self.ws.stamp[vi] == self.ws.gen && self.ws.settled[vi]
    }

    /// Shortest distance to `v`, or `INFINITY` if `v` was not settled.
    pub fn dist(&self, v: NodeId) -> f64 {
        if self.reached(v) {
            self.ws.dist[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// Extract the path to `target`, or `None` if it was not settled.
    pub fn extract_path(&self, target: NodeId) -> Option<Path> {
        if !self.reached(target) {
            return None;
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut v = target;
        while v != self.ws.source {
            let e = self.ws.parent_edge[v as usize];
            let p = self.ws.parent_node[v as usize];
            debug_assert!(e != EdgeId::MAX && p != NodeId::MAX);
            edges.push(e);
            nodes.push(p);
            v = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path {
            nodes,
            edges,
            total_weight: self.ws.dist[target as usize],
        })
    }

    /// Overwrite `out` with the per-node distances (`INFINITY` where
    /// unsettled), sized to the run's graph.
    pub fn write_dists(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.ws.active_n);
        for v in 0..self.ws.active_n {
            let d = if self.ws.stamp[v] == self.ws.gen && self.ws.settled[v] {
                self.ws.dist[v]
            } else {
                f64::INFINITY
            };
            out.push(d);
        }
    }

    /// Materialize an owned [`ShortestPaths`] (allocates three `n`-vecs).
    pub fn to_shortest_paths(&self) -> ShortestPaths {
        let n = self.ws.active_n;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent_edge = vec![EdgeId::MAX; n];
        let mut parent_node = vec![NodeId::MAX; n];
        for v in 0..n {
            if self.ws.stamp[v] == self.ws.gen && self.ws.settled[v] {
                dist[v] = self.ws.dist[v];
                parent_edge[v] = self.ws.parent_edge[v];
                parent_node[v] = self.ws.parent_node[v];
            }
        }
        ShortestPaths {
            source: self.ws.source,
            dist,
            parent_edge,
            parent_node,
        }
    }
}

thread_local! {
    static THREAD_WS: std::cell::RefCell<DijkstraWorkspace> =
        std::cell::RefCell::new(DijkstraWorkspace::new());
}

/// Run `f` with this thread's shared [`DijkstraWorkspace`] — a warm
/// workspace for one-shot call sites that don't manage their own.
///
/// Re-entrant use (calling `with_thread_workspace` from inside `f`)
/// panics on the `RefCell` borrow; pass the workspace down instead.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut DijkstraWorkspace) -> R) -> R {
    THREAD_WS.with(|ws| f(&mut ws.borrow_mut()))
}

/// Dijkstra from `source` over all edges.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    DijkstraWorkspace::new()
        .run(g, source, None, None)
        .to_shortest_paths()
}

/// Dijkstra from `source`, ignoring edges whose id is marked `true` in
/// `disabled` (a bitmask indexed by [`EdgeId`]).
///
/// Used for k-edge-disjoint path computation and link-failure injection.
/// An optional `target` enables early exit once the target is settled; in
/// that case only nodes settled before the exit report finite distances
/// (see [`ShortestPaths::dist`]).
pub fn dijkstra_with_mask(
    g: &Graph,
    source: NodeId,
    disabled: &[bool],
    target: Option<NodeId>,
) -> ShortestPaths {
    DijkstraWorkspace::new()
        .run(g, source, Some(disabled), target)
        .to_shortest_paths()
}

/// A shortest-path **tree** maintained incrementally across graph
/// versions.
///
/// Where [`DijkstraWorkspace`] answers one-shot queries, an
/// `SptWorkspace` keeps the full tree of one source alive while the
/// graph evolves (a `TimeSweep`-style edge delta per step:
/// added / removed / reweighted edges with remapped ids), repairing it
/// in place instead of re-running Dijkstra from scratch:
///
/// 1. **Re-anchor** — walk every old tree path root→leaf and recompute
///    its distance fold with the *new* weights (a removed or unmapped
///    parent edge cuts the subtree to `INFINITY`). Every finite value
///    produced is the fold of a real path in the new graph, so it is a
///    valid upper bound on the new distance.
/// 2. **Fixpoint repair** — one scan over all new edges seeds a
///    label-correcting worklist with every violated bound (this is
///    where added edges enter); the worklist then relaxes to the unique
///    fixpoint. Because f64 addition is monotone, that fixpoint is
///    exactly `min` over all paths of the left-fold sum — the same
///    value, bit for bit, that a fresh Dijkstra computes.
/// 3. **Canonical parents** — recompute `parent[v]` as the candidate
///    `u` minimizing `(dist[u], u)` among neighbors with
///    `dist[u] + w == dist[v]` exactly and `(dist[u], u) < (dist[v], v)`
///    lexicographically, breaking ties among parallel edges by lowest
///    edge id. For strictly positive weights this is precisely the
///    parent a fresh [`dijkstra`] run assigns (its settle order *is*
///    the lexicographic order on `(dist, node)`), so repaired parents —
///    and therefore extracted paths — are bit-identical to a fresh run.
///
/// **Equivalence contract**: after `rebuild` or `apply`, `dists()` is
/// bitwise equal to a fresh [`dijkstra`] from the same source on the
/// same graph, and for graphs with strictly positive weights (every
/// snapshot graph: weights are propagation delays) `parent_nodes()` /
/// `parent_edges()` are bitwise equal too. The property suite in
/// `tests/sweep.rs` enforces this over thousands of random sweep steps.
///
/// Zero-weight edges keep distances exact but void the deterministic
/// parent guarantee (the canonical rule can fail to find a candidate;
/// `extract_path` then returns `None` rather than a wrong path).
///
/// Correctness does **not** depend on the delta being complete: an old
/// edge missing from `reweighted` merely loses its bound (treated as
/// removed), costing repair work, never accuracy — phase 2 always
/// converges on the true new-graph fixpoint.
#[derive(Debug, Default)]
pub struct SptWorkspace {
    source: NodeId,
    dist: Vec<f64>,
    parent_edge: Vec<EdgeId>,
    parent_node: Vec<NodeId>,
    /// Old-edge-id → new-edge-id scratch (`EdgeId::MAX` = removed).
    old_to_new: Vec<EdgeId>,
    /// Per-node "anchored this round" scratch (doubles as `settled` in
    /// [`SptWorkspace::rebuild`]).
    done: Vec<bool>,
    /// Parent-chain walk scratch for the re-anchor phase (doubles as
    /// the dirty list while seeding phase 2).
    stack: Vec<NodeId>,
    /// Dial-style bucket queue for phase-2 relaxation.
    buckets: Vec<Vec<(f64, NodeId)>>,
    heap: BinaryHeap<HeapItem>,
    ready: bool,
}

impl SptWorkspace {
    /// An empty workspace; buffers grow on first [`SptWorkspace::rebuild`].
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a tree has been built (i.e. `rebuild` ran at least once).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Source node of the maintained tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Node count of the tree's current graph version.
    pub fn num_nodes(&self) -> usize {
        self.dist.len()
    }

    /// Shortest distance to `v` (`INFINITY` if unreached or out of range).
    pub fn dist(&self, v: NodeId) -> f64 {
        self.dist.get(v as usize).copied().unwrap_or(f64::INFINITY)
    }

    /// Per-node distances (`INFINITY` where unreached).
    pub fn dists(&self) -> &[f64] {
        &self.dist
    }

    /// Per-node parent edge ids (`EdgeId::MAX` for source / unreached).
    pub fn parent_edges(&self) -> &[EdgeId] {
        &self.parent_edge
    }

    /// Per-node parent nodes (`NodeId::MAX` for source / unreached).
    pub fn parent_nodes(&self) -> &[NodeId] {
        &self.parent_node
    }

    /// Build the tree from scratch with a full Dijkstra run.
    ///
    /// Also the fallback when a delta arrives with `full = true` (chunk
    /// starts, or a consumer that lost delta continuity).
    pub fn rebuild(&mut self, g: &Graph, source: NodeId) {
        let n = g.num_nodes();
        // Release builds bounds-check the same invariant at `dist[si]`.
        debug_assert!((source as usize) < n, "source out of range");
        SPT_FULL_FALLBACKS.add(1);
        self.source = source;
        self.dist.clear();
        // lint: allow(hot-path-alloc) clear+resize reuses capacity; allocates only on a new peak node count
        self.dist.resize(n, f64::INFINITY);
        self.done.clear();
        // lint: allow(hot-path-alloc) clear+resize reuses capacity; allocates only on a new peak node count
        self.done.resize(n, false);
        self.heap.clear();
        let si = source as usize;
        self.dist[si] = 0.0;
        self.heap.push(HeapItem {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapItem { dist: d, node: u }) = self.heap.pop() {
            let ui = u as usize;
            if self.done[ui] {
                continue;
            }
            self.done[ui] = true;
            for h in g.neighbors(u) {
                let nd = d + h.weight;
                let vi = h.to as usize;
                if nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.heap.push(HeapItem {
                        dist: nd,
                        node: h.to,
                    });
                }
            }
        }
        self.recompute_parents(g);
        self.ready = true;
    }

    /// Repair the tree after the graph stepped to a new version.
    ///
    /// `removed` lists old edge ids that no longer exist; `reweighted`
    /// maps persisted edges `(old id, new id)` whose endpoints are
    /// unchanged but whose weight (and id) may have — every surviving
    /// old edge must appear in exactly one of the two. Added edges need
    /// no listing: the seeding scan in phase 2 discovers them. `g` is
    /// the **new** graph; its node count may differ from the previous
    /// version (the stable node prefix keeps its ids; tail nodes that
    /// vanished must have had their edges removed).
    pub fn apply(&mut self, g: &Graph, removed: &[EdgeId], reweighted: &[(EdgeId, EdgeId)]) {
        self.apply_impl(g, removed, reweighted, None);
    }

    /// [`SptWorkspace::apply`] when only `targets` will be queried: the
    /// Dial-bucket drain stops as soon as every target's label settles
    /// below the next bucket floor, instead of relaxing the whole graph
    /// to the fixpoint.
    ///
    /// Contract: for every target, `dist` and `extract_path` are
    /// **bitwise identical** to a full [`SptWorkspace::apply`] (and so
    /// to fresh [`dijkstra`]). The argument: after draining bucket `bi`,
    /// every pending queue entry carries a label `≥ (bi + 1) · width`,
    /// and positive weights only push labels up — so any node whose
    /// label sits strictly below that floor is final. Settled nodes'
    /// canonical parents also settle first (`du < dv`), so target parent
    /// chains are final too. Non-target state is *not* preserved:
    /// labels at or above the stop floor are discarded to `INFINITY` /
    /// `NodeId::MAX` parents, exactly the shape of an unreached node, so
    /// a later `apply`/`apply_for_targets` on this workspace re-anchors
    /// the kept prefix and re-discovers the rest from the seed scan —
    /// correctness never depends on how early a previous repair stopped.
    /// A target unreached in the new graph keeps an `INFINITY` label and
    /// therefore never satisfies the exit test; such repairs degrade to
    /// the full drain.
    pub fn apply_for_targets(
        &mut self,
        g: &Graph,
        removed: &[EdgeId],
        reweighted: &[(EdgeId, EdgeId)],
        targets: &[NodeId],
    ) {
        self.apply_impl(g, removed, reweighted, Some(targets));
    }

    // lint: hot-path
    fn apply_impl(
        &mut self,
        g: &Graph,
        removed: &[EdgeId],
        reweighted: &[(EdgeId, EdgeId)],
        targets: Option<&[NodeId]>,
    ) {
        // lint: allow(panic-reachable) API misuse trap: apply without a prior rebuild would repair an empty tree into garbage paths
        assert!(self.ready, "SptWorkspace::apply before rebuild");
        let n = g.num_nodes();
        let src = self.source as usize;
        // Release builds bounds-check the same invariant at `dist[src]`.
        debug_assert!(src < n, "source dropped by the new graph version");
        SPT_REPAIRS.add(1);
        DELTA_EDGES_APPLIED.add((removed.len() + reweighted.len()) as u64);
        if self.buckets.is_empty() {
            // lint: allow(hot-path-alloc) one-time growth to the fixed bucket count, then recycled
            self.buckets.resize_with(1024, Vec::new);
        }

        // Old-id → new-id map. Ids absent from `reweighted` (including
        // everything in `removed`) stay MAX = gone.
        let max_old = reweighted
            .iter()
            .map(|&(o, _)| o)
            .chain(removed.iter().copied())
            .max()
            .map_or(0, |m| m as usize + 1);
        self.old_to_new.clear();
        self.old_to_new.resize(max_old, EdgeId::MAX);
        for &(o, ne) in reweighted {
            self.old_to_new[o as usize] = ne;
        }

        let old_n = self.dist.len();
        if n > old_n {
            self.dist.resize(n, f64::INFINITY);
            self.parent_edge.resize(n, EdgeId::MAX);
            self.parent_node.resize(n, NodeId::MAX);
        } else if n < old_n {
            self.dist.truncate(n);
            self.parent_edge.truncate(n);
            self.parent_node.truncate(n);
        }

        // Phase 1: re-anchor — overwrite `dist` with the fold of each
        // old tree path under the new weights, root before leaf.
        self.done.clear();
        self.done.resize(n, false);
        self.dist[src] = 0.0;
        self.done[src] = true;
        for v0 in 0..n as NodeId {
            if self.done[v0 as usize] {
                continue;
            }
            self.stack.clear();
            let mut cur = v0;
            while !self.done[cur as usize] {
                self.stack.push(cur);
                let pn = self.parent_node[cur as usize];
                if pn == NodeId::MAX || (pn as usize) >= n || self.stack.len() > n {
                    // Chain root (unreached / stale-tail parent), or a
                    // defensively-broken cycle: the unwind below
                    // resolves every stacked node to INFINITY or to a
                    // valid fold off its (now `done`) parent.
                    debug_assert!(self.stack.len() <= n, "cycle in parent chain");
                    break;
                }
                cur = pn;
            }
            while let Some(v) = self.stack.pop() {
                let vi = v as usize;
                let pn = self.parent_node[vi];
                let pe = self.parent_edge[vi];
                let mut nd = f64::INFINITY;
                if pn != NodeId::MAX && (pn as usize) < n && self.done[pn as usize] {
                    let ne = self
                        .old_to_new
                        .get(pe as usize)
                        .copied()
                        .unwrap_or(EdgeId::MAX);
                    if ne != EdgeId::MAX {
                        let pd = self.dist[pn as usize];
                        if pd.is_finite() {
                            let (a, b, w) = g.edge(ne);
                            debug_assert!(
                                (a == pn && b == v) || (a == v && b == pn),
                                "reweighted pair changed endpoints"
                            );
                            debug_assert!(w > 0.0, "SPT repair requires positive weights");
                            nd = pd + w;
                        }
                    }
                }
                self.dist[vi] = nd;
                self.done[vi] = true;
            }
        }

        // Phase 2: seed a label-correcting worklist from every edge
        // whose bound is violated (added edges surface here), then
        // relax to the unique fixpoint = fresh-Dijkstra distances.
        self.heap.clear();
        self.stack.clear();
        for e in 0..g.num_edges() as EdgeId {
            let (u, v, w) = g.edge(e);
            let (ui, vi) = (u as usize, v as usize);
            let nd = self.dist[ui] + w;
            if nd < self.dist[vi] {
                self.dist[vi] = nd;
                if self.done[vi] {
                    self.done[vi] = false;
                    self.stack.push(v);
                }
            }
            let nd = self.dist[vi] + w;
            if nd < self.dist[ui] {
                self.dist[ui] = nd;
                if self.done[ui] {
                    self.done[ui] = false;
                    self.stack.push(u);
                }
            }
        }
        // Relax to the fixpoint through a two-level queue: coarse
        // Dial-style buckets defer far entries, and each bucket drains
        // through the binary heap (exact order, lazy stale skips). The
        // fixpoint is processing-order independent (see the type docs),
        // so the bucketing only bounds reprocessing — it never changes
        // the result. When edge weights exceed the bucket width (the
        // common constellation case) every relaxation lands in a later
        // bucket and the heap stays near-empty; the heap exists so
        // sub-width edges still drain in exact ascending order instead
        // of degenerating into within-bucket Bellman-Ford churn. An
        // improvement made while draining bucket `bi` lands in a later
        // bucket or back on the heap, so one ascending pass is
        // lossless.
        let mut max_d: f64 = 0.0;
        for &d in &self.dist {
            if d.is_finite() && d > max_d {
                max_d = d;
            }
        }
        let nb = self.buckets.len();
        let width = if max_d > 0.0 {
            // Finite bounds cap every final distance; the margin keeps
            // late-attaching orphan chains out of the clamped tail.
            max_d * 1.0625 / (nb - 1) as f64
        } else {
            1.0
        };
        let bucket_of = |d: f64| ((d / width) as usize).min(nb - 1);
        while let Some(v) = self.stack.pop() {
            let d = self.dist[v as usize];
            self.buckets[bucket_of(d)].push((d, v));
        }
        self.heap.clear();
        let mut stop_floor = f64::INFINITY;
        for bi in 0..nb {
            while let Some(&(d, v)) = self.buckets[bi].last() {
                self.buckets[bi].pop();
                self.heap.push(HeapItem { dist: d, node: v });
            }
            while let Some(HeapItem { dist: d, node: u }) = self.heap.pop() {
                let ui = u as usize;
                if d > self.dist[ui] {
                    continue; // stale entry; a tighter bound was queued later
                }
                for h in g.neighbors(u) {
                    let nd = d + h.weight;
                    let vi = h.to as usize;
                    if nd < self.dist[vi] {
                        self.dist[vi] = nd;
                        let tb = bucket_of(nd);
                        if tb <= bi {
                            self.heap.push(HeapItem {
                                dist: nd,
                                node: h.to,
                            });
                        } else {
                            self.buckets[tb].push((nd, h.to));
                        }
                    }
                }
            }
            if let Some(ts) = targets {
                // Tighten the floor by a relative margin that dwarfs the
                // `bucket_of` division rounding (~2⁻⁵²): an entry can be
                // misbucketed upward by at most an ulp, so requiring
                // labels strictly below the *tightened* floor keeps the
                // finality argument exact even at bucket boundaries.
                let floor = (bi + 1) as f64 * width * (1.0 - 1e-9);
                if ts
                    .iter()
                    .all(|&t| self.dist.get(t as usize).is_some_and(|&d| d < floor))
                {
                    SPT_EARLY_EXITS.add(1);
                    stop_floor = floor;
                    for b in &mut self.buckets[bi + 1..] {
                        b.clear();
                    }
                    break;
                }
            }
        }
        if stop_floor.is_finite() {
            // Labels at or above the stop floor never finished relaxing;
            // reset them to the unreached shape so later repairs (and
            // `recompute_parents` below) never see a half-settled label.
            for d in &mut self.dist {
                if *d >= stop_floor {
                    *d = f64::INFINITY;
                }
            }
        }

        self.recompute_parents(g);
    }

    /// Phase 3: canonical parent assignment (see the type docs for why
    /// this reproduces fresh-Dijkstra parents bit for bit).
    fn recompute_parents(&mut self, g: &Graph) {
        let n = g.num_nodes();
        self.parent_edge.clear();
        // lint: allow(hot-path-alloc) clear+resize reuses capacity; allocates only on a new peak node count
        self.parent_edge.resize(n, EdgeId::MAX);
        self.parent_node.clear();
        // lint: allow(hot-path-alloc) clear+resize reuses capacity; allocates only on a new peak node count
        self.parent_node.resize(n, NodeId::MAX);
        let src = self.source;
        for v in 0..n as NodeId {
            let dv = self.dist[v as usize];
            if v == src || !dv.is_finite() {
                continue;
            }
            let mut best_d = f64::INFINITY;
            let mut best_u = NodeId::MAX;
            let mut best_e = EdgeId::MAX;
            for h in g.neighbors(v) {
                let du = self.dist[h.to as usize];
                // Exact candidates that settle before `v` in a fresh
                // run: (du, u) < (dv, v) lexicographically. Parallel
                // edges tie-break by lowest id for free — the CSR slice
                // is in increasing edge-id order and replacement below
                // is strict.
                if du + h.weight == dv
                    && (du < dv || (du == dv && h.to < v))
                    && (du < best_d || (du == best_d && h.to < best_u))
                {
                    best_d = du;
                    best_u = h.to;
                    best_e = h.edge;
                }
            }
            debug_assert!(
                best_e != EdgeId::MAX,
                "no canonical parent for a reached node (zero-weight edges?)"
            );
            self.parent_edge[v as usize] = best_e;
            self.parent_node[v as usize] = best_u;
        }
    }

    /// Extract the tree path to `target`, or `None` if unreached.
    pub fn extract_path(&self, target: NodeId) -> Option<Path> {
        let ti = target as usize;
        if ti >= self.dist.len() || !self.dist[ti].is_finite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut v = target;
        while v != self.source {
            let e = self.parent_edge[v as usize];
            let p = self.parent_node[v as usize];
            if e == EdgeId::MAX || p == NodeId::MAX || nodes.len() > self.dist.len() {
                debug_assert!(false, "broken parent chain for reached node");
                return None;
            }
            edges.push(e);
            nodes.push(p);
            v = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path {
            nodes,
            edges,
            total_weight: self.dist[ti],
        })
    }
}

/// Extract the path from the SSSP tree to `target`, or `None` if
/// unreached.
pub fn extract_path(sp: &ShortestPaths, target: NodeId) -> Option<Path> {
    if !sp.reached(target) {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut v = target;
    while v != sp.source {
        let e = sp.parent_edge[v as usize];
        let p = sp.parent_node[v as usize];
        debug_assert!(e != EdgeId::MAX && p != NodeId::MAX);
        edges.push(e);
        nodes.push(p);
        v = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path {
        nodes,
        edges,
        total_weight: sp.dist[target as usize],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 --1-- 1 --1-- 2
    ///  \------5------/
    fn small() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        b.build()
    }

    #[test]
    fn prefers_two_hop_path() {
        let g = small();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        let p = extract_path(&sp, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 2]);
        assert_eq!(p.num_hops(), 2);
        assert_eq!(p.total_weight, 2.0);
    }

    #[test]
    fn masked_edge_forces_detour() {
        let g = small();
        let mut disabled = vec![false; g.num_edges()];
        disabled[0] = true; // kill 0-1
        let sp = dijkstra_with_mask(&g, 0, &disabled, None);
        assert_eq!(sp.dist[2], 5.0);
        let p = extract_path(&sp, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 2]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        // 2,3 disconnected from 0,1; 2-3 connected.
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert!(!sp.reached(2));
        assert!(extract_path(&sp, 3).is_none());
    }

    #[test]
    fn source_path_is_trivial() {
        let g = small();
        let sp = dijkstra(&g, 1);
        let p = extract_path(&sp, 1).unwrap();
        assert_eq!(p.nodes, vec![1]);
        assert!(p.edges.is_empty());
        assert_eq!(p.total_weight, 0.0);
    }

    #[test]
    fn early_exit_still_correct_for_target() {
        let g = small();
        let sp = dijkstra_with_mask(&g, 0, &[false; 3], Some(2));
        assert_eq!(sp.dist[2], 2.0);
        assert!(extract_path(&sp, 2).is_some());
    }

    /// Regression: before the settled-only contract, an early-exited run
    /// reported `dist[v]` for queued-but-unsettled nodes as whatever
    /// upper bound had been relaxed so far — here 10.0 for node 2, whose
    /// true distance is 2.0 — and `reached(2)` claimed true.
    #[test]
    fn early_exit_does_not_report_stale_distances() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 10.0); // relaxes 2 to 10.0 before the exit
        b.add_edge(1, 2, 1.0); // true shortest: 0-1-2 = 2.0
        let g = b.build();
        let sp = dijkstra_with_mask(&g, 0, &[false; 3], Some(1));
        assert_eq!(sp.dist[1], 1.0, "target distance is exact");
        assert!(
            !sp.reached(2),
            "unsettled node must not be reported as reached (dist was {})",
            sp.dist[2]
        );
        assert!(sp.dist[2].is_infinite(), "no stale upper bound exposed");
        assert!(extract_path(&sp, 2).is_none());
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.0);
        b.add_edge(1, 2, 0.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 0.0);
        assert_eq!(extract_path(&sp, 2).unwrap().num_hops(), 2);
    }

    #[test]
    fn grid_distances_match_manhattan() {
        // 5x5 unit grid: distance == Manhattan distance.
        let n = 5;
        let id = |r: u32, c: u32| r * n + c;
        let mut b = GraphBuilder::new((n * n) as usize);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.add_edge(id(r, c), id(r, c + 1), 1.0);
                }
                if r + 1 < n {
                    b.add_edge(id(r, c), id(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let sp = dijkstra(&g, 0);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(sp.dist[id(r, c) as usize], (r + c) as f64);
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_across_graphs() {
        // One workspace reused across graphs of different sizes must
        // agree with fresh runs everywhere — including after shrinking.
        let graphs = [small(), two_cliques(), small()];
        let mut ws = DijkstraWorkspace::new();
        for g in &graphs {
            for s in 0..g.num_nodes() as NodeId {
                let fresh = dijkstra(g, s);
                let view = ws.run(g, s, None, None);
                for v in 0..g.num_nodes() as NodeId {
                    assert_eq!(view.dist(v), fresh.dist[v as usize], "src {s} node {v}");
                    assert_eq!(view.reached(v), fresh.reached(v));
                    assert_eq!(
                        view.extract_path(v).map(|p| p.nodes),
                        extract_path(&fresh, v).map(|p| p.nodes)
                    );
                }
            }
        }
        assert_eq!(ws.runs(), 3 + 8 + 3);
    }

    /// 8 nodes: clique {0..3} and clique {4..7}, disconnected.
    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j, (i + j + 1) as f64);
                }
            }
        }
        b.build()
    }

    #[test]
    fn generation_wrap_clears_stamps() {
        let g = small();
        let mut ws = DijkstraWorkspace::new();
        // Warm up so every stamp slot holds a nonzero generation.
        ws.run(&g, 0, None, None);
        // Jump to the wrap point: next run bumps u32::MAX -> 0, which
        // must trigger the full stamp clear, not treat slots stamped
        // with the warm-up generation as touched.
        ws.set_gen_for_test(u32::MAX);
        let view = ws.run(&g, 1, None, None);
        assert_eq!(view.dist(0), 1.0);
        assert_eq!(view.dist(2), 1.0);
        let view = ws.run(&g, 0, None, None);
        assert_eq!(view.dist(2), 2.0);
    }

    #[test]
    fn view_write_dists_and_materialize_agree() {
        let g = two_cliques();
        let mut ws = DijkstraWorkspace::new();
        let view = ws.run(&g, 1, None, None);
        let sp = view.to_shortest_paths();
        let mut dists = Vec::new();
        view.write_dists(&mut dists);
        assert_eq!(dists.len(), g.num_nodes());
        for (a, b) in dists.iter().zip(&sp.dist) {
            assert_eq!(a, b);
        }
        assert!(!sp.reached(5), "other clique unreached");
    }

    #[test]
    fn mask_and_dist_buf_loans_round_trip() {
        let g = small();
        let mut ws = DijkstraWorkspace::new();
        let mut mask = ws.take_mask(g.num_edges());
        assert_eq!(mask, vec![false; 3]);
        mask[0] = true;
        let view = ws.run(&g, 0, Some(&mask), None);
        assert_eq!(view.dist(2), 5.0);
        ws.put_mask(mask);
        // Returned mask is re-cleared on the next take.
        let mask2 = ws.take_mask(2);
        assert_eq!(mask2, vec![false; 2]);
        ws.put_mask(mask2);
        let mut buf = ws.take_dist_buf();
        ws.view().write_dists(&mut buf);
        assert_eq!(buf[2], 5.0);
        assert_eq!(buf[1], 6.0, "0-1 masked, so 1 is reached via 0-2-1");
        ws.put_dist_buf(buf);
    }

    #[test]
    fn multi_target_early_exit_settles_all_targets() {
        // Line graph 0-1-2-3-4: targets {1, 3} must both be exact even
        // though the run may stop before settling 4.
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let mut ws = DijkstraWorkspace::new();
        let view = ws.run_multi(&g, 0, None, &[3, 1]);
        assert_eq!(view.dist(1), 1.0);
        assert_eq!(view.dist(3), 3.0);
        assert!(view.extract_path(3).is_some());
        assert!(
            !view.reached(4),
            "node past the farthest target must not be settled"
        );
        // Duplicates and the source itself are fine.
        let view = ws.run_multi(&g, 2, None, &[2, 2, 4, 4]);
        assert_eq!(view.dist(2), 0.0);
        assert_eq!(view.dist(4), 2.0);
        // Empty target set means a full run.
        let view = ws.run_multi(&g, 0, None, &[]);
        for v in 0..5 {
            assert_eq!(view.dist(v), v as f64);
        }
    }

    #[test]
    fn multi_target_matches_full_run_on_targets() {
        let g = two_cliques();
        let mut ws = DijkstraWorkspace::new();
        for s in 0..g.num_nodes() as NodeId {
            let fresh = dijkstra(&g, s);
            let targets: Vec<NodeId> = (0..g.num_nodes() as NodeId).step_by(2).collect();
            let view = ws.run_multi(&g, s, None, &targets);
            for &t in &targets {
                // Unreachable targets can never settle; the run still
                // terminates (heap exhaustion) and reports INFINITY.
                assert_eq!(view.dist(t), fresh.dist[t as usize], "src {s} target {t}");
            }
        }
    }

    #[test]
    fn thread_workspace_is_warm_across_calls() {
        let g = small();
        let runs_before = with_thread_workspace(|ws| ws.runs());
        let d = with_thread_workspace(|ws| ws.run(&g, 0, None, None).dist(2));
        assert_eq!(d, 2.0);
        let runs_after = with_thread_workspace(|ws| ws.runs());
        assert_eq!(runs_after, runs_before + 1);
    }

    /// Assert the SPT's distances AND parents are bitwise equal to a
    /// fresh Dijkstra from the same source.
    fn assert_spt_matches_fresh(spt: &SptWorkspace, g: &Graph, ctx: &str) {
        let fresh = dijkstra(g, spt.source());
        assert_eq!(spt.num_nodes(), g.num_nodes(), "{ctx}: node count");
        for v in 0..g.num_nodes() {
            assert_eq!(
                spt.dists()[v].to_bits(),
                fresh.dist[v].to_bits(),
                "{ctx}: dist[{v}]"
            );
            assert_eq!(
                spt.parent_nodes()[v],
                fresh.parent_node[v],
                "{ctx}: pn[{v}]"
            );
            assert_eq!(
                spt.parent_edges()[v],
                fresh.parent_edge[v],
                "{ctx}: pe[{v}]"
            );
        }
    }

    #[test]
    fn spt_rebuild_matches_fresh_dijkstra() {
        for g in [small(), two_cliques()] {
            for s in 0..g.num_nodes() as NodeId {
                let mut spt = SptWorkspace::new();
                spt.rebuild(&g, s);
                assert_spt_matches_fresh(&spt, &g, &format!("rebuild src {s}"));
            }
        }
    }

    #[test]
    fn spt_apply_reweight_and_membership_churn() {
        // v0: 0-1 (1.0), 1-2 (1.0), 0-2 (5.0)  → 0-1-2 wins.
        let g0 = small();
        let mut spt = SptWorkspace::new();
        spt.rebuild(&g0, 0);
        // v1: reweight 1-2 up to 10.0 (old ids keep their slots), so the
        // direct 0-2 edge wins; all three edges persist.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.5);
        b.add_edge(1, 2, 10.0);
        b.add_edge(0, 2, 5.0);
        let g1 = b.build();
        spt.apply(&g1, &[], &[(0, 0), (1, 1), (2, 2)]);
        assert_spt_matches_fresh(&spt, &g1, "reweight");
        assert_eq!(spt.extract_path(2).unwrap().nodes, vec![0, 2]);
        // v2: remove the direct edge, add a detour via a new node 3;
        // surviving edges get fresh ids (0-1 → id 0, 1-2 → id 1).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.5);
        b.add_edge(1, 2, 10.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(3, 2, 1.0);
        let g2 = b.build();
        spt.apply(&g2, &[2], &[(0, 0), (1, 1)]);
        assert_spt_matches_fresh(&spt, &g2, "remove+add+grow");
        assert_eq!(spt.extract_path(2).unwrap().nodes, vec![0, 3, 2]);
        // v3: shrink back to 3 nodes, disconnecting 2 entirely.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0);
        let g3 = b.build();
        spt.apply(&g3, &[1, 2, 3], &[(0, 0)]);
        assert_spt_matches_fresh(&spt, &g3, "shrink+disconnect");
        assert!(spt.extract_path(2).is_none());
    }

    #[test]
    fn spt_apply_handles_removal_disconnected_subtree() {
        // Line 0-1-2-3-4; cutting 1-2 strands {2,3,4}.
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(i, i + 1, 1.0 + i as f64);
        }
        let g0 = b.build();
        let mut spt = SptWorkspace::new();
        spt.rebuild(&g0, 0);
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 3.0);
        b.add_edge(3, 4, 4.0);
        let g1 = b.build();
        spt.apply(&g1, &[1], &[(0, 0), (2, 1), (3, 2)]);
        assert_spt_matches_fresh(&spt, &g1, "disconnect");
        // Reconnect with a *different* topology: 0-4 direct.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 3.0);
        b.add_edge(3, 4, 4.0);
        b.add_edge(0, 4, 0.5);
        let g2 = b.build();
        spt.apply(&g2, &[], &[(0, 0), (1, 1), (2, 2)]);
        assert_spt_matches_fresh(&spt, &g2, "reconnect");
        assert_eq!(spt.extract_path(2).unwrap().nodes, vec![0, 4, 3, 2]);
    }

    #[test]
    fn spt_parallel_edges_and_ties_pick_lowest_edge_id() {
        // Two equal-weight parallel edges 0-1 plus an equal-cost two-hop
        // alternative through 2: fresh Dijkstra and the repaired tree
        // must agree on the same deterministic choice.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(2, 1, 1.0);
        let g0 = b.build();
        let mut spt = SptWorkspace::new();
        spt.rebuild(&g0, 0);
        assert_spt_matches_fresh(&spt, &g0, "parallel ties rebuild");
        // Same structure, jittered weights, ids shuffled by an insert.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(2, 1, 1.0);
        let g1 = b.build();
        spt.apply(&g1, &[], &[(0, 1), (1, 2), (2, 0), (3, 3)]);
        assert_spt_matches_fresh(&spt, &g1, "parallel ties apply");
    }

    #[test]
    fn spt_incomplete_delta_still_exact() {
        // Contract robustness: forgetting a surviving edge in
        // `reweighted` must cost efficiency only, never accuracy.
        let g = small();
        let mut spt = SptWorkspace::new();
        spt.rebuild(&g, 0);
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        let g1 = b.build();
        spt.apply(&g1, &[], &[(2, 2)]); // edges 0 and 1 unlisted
        assert_spt_matches_fresh(&spt, &g1, "incomplete delta");
    }

    #[test]
    fn spt_random_walk_matches_fresh_every_step() {
        // Random dense-ish graphs under heavy churn: every step removes,
        // reweights, and adds edges with remapped ids.
        let mut rng = leo_util::rng::Rng64::seed_from_u64(0x5_e71d);
        let n = 24usize;
        // Persistent edge set as (u, v) pairs with weights; ids are
        // positional, so each rebuild assigns ids by current order.
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if rng.random_range(0u32..4) == 0 {
                    edges.push((u, v, 0.1 + rng.next_f64() * 10.0));
                }
            }
        }
        let build = |edges: &[(NodeId, NodeId, f64)]| {
            let mut b = GraphBuilder::new(n);
            for &(u, v, w) in edges {
                b.add_edge(u, v, w);
            }
            b.build()
        };
        let g0 = build(&edges);
        let mut spt = SptWorkspace::new();
        spt.rebuild(&g0, 3);
        assert_spt_matches_fresh(&spt, &g0, "walk rebuild");
        for step in 0..60 {
            let mut removed = Vec::new();
            let mut survivors = Vec::new();
            for (old_id, e) in edges.iter().enumerate() {
                if rng.random_range(0u32..6) == 0 {
                    removed.push(old_id as EdgeId);
                } else {
                    survivors.push((old_id as EdgeId, *e));
                }
            }
            // Shuffle survivor order so new ids differ from old ones.
            for i in (1..survivors.len()).rev() {
                let j = rng.random_range(0..i + 1);
                survivors.swap(i, j);
            }
            let mut reweighted = Vec::new();
            let mut next = Vec::new();
            for (new_id, (old_id, (u, v, w))) in survivors.into_iter().enumerate() {
                let w = if rng.random_range(0u32..2) == 0 {
                    0.1 + rng.next_f64() * 10.0
                } else {
                    w
                };
                reweighted.push((old_id, new_id as EdgeId));
                next.push((u, v, w));
            }
            for _ in 0..rng.random_range(0u32..6) {
                let u = rng.random_range(0..n as u32);
                let v = rng.random_range(0..n as u32);
                if u != v {
                    next.push((u.min(v), u.max(v), 0.1 + rng.next_f64() * 10.0));
                }
            }
            let g = build(&next);
            spt.apply(&g, &removed, &reweighted);
            assert_spt_matches_fresh(&spt, &g, &format!("walk step {step}"));
            edges = next;
        }
    }
}
