//! Single-source shortest paths (Dijkstra) with optional edge masks.

use crate::graph::{EdgeId, Graph, NodeId};
use leo_util::telemetry::Counter;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Telemetry: total Dijkstra runs (plain + masked) across the process.
static DIJKSTRA_CALLS: Counter = Counter::new("dijkstra_calls");
/// Telemetry: nodes settled across all Dijkstra runs.
static DIJKSTRA_SETTLED: Counter = Counter::new("dijkstra_nodes_settled");

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source node.
    pub source: NodeId,
    /// `dist[v]` = shortest distance from the source, `f64::INFINITY` if
    /// unreachable.
    pub dist: Vec<f64>,
    /// `parent_edge[v]` = edge id used to reach `v` on the shortest path,
    /// `EdgeId::MAX` for the source and unreachable nodes.
    pub parent_edge: Vec<EdgeId>,
    /// `parent_node[v]` = predecessor of `v`, `NodeId::MAX` if none.
    pub parent_node: Vec<NodeId>,
}

impl ShortestPaths {
    /// True iff `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize].is_finite()
    }
}

/// A path: node sequence plus the edges connecting them and total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Edge ids, one per hop (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Sum of edge weights.
    pub total_weight: f64,
}

impl Path {
    /// Number of hops (edges) in the path.
    pub fn num_hops(&self) -> usize {
        self.edges.len()
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance: reverse the comparison. Distances are
        // finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `source` over all edges.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    dijkstra_impl(g, source, None, None)
}

/// Dijkstra from `source`, ignoring edges whose id is marked `true` in
/// `disabled` (a bitmask indexed by [`EdgeId`]).
///
/// Used for k-edge-disjoint path computation and link-failure injection.
/// An optional `target` enables early exit once the target is settled.
pub fn dijkstra_with_mask(
    g: &Graph,
    source: NodeId,
    disabled: &[bool],
    target: Option<NodeId>,
) -> ShortestPaths {
    dijkstra_impl(g, source, Some(disabled), target)
}

fn dijkstra_impl(
    g: &Graph,
    source: NodeId,
    disabled: Option<&[bool]>,
    target: Option<NodeId>,
) -> ShortestPaths {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source out of range");
    if let Some(d) = disabled {
        assert_eq!(d.len(), g.num_edges(), "mask length must equal edge count");
    }
    DIJKSTRA_CALLS.add(1);
    let mut settled_count = 0u64;
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_edge = vec![EdgeId::MAX; n];
    let mut parent_node = vec![NodeId::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(1024);
    dist[source as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        settled_count += 1;
        if target == Some(u) {
            break;
        }
        for h in g.neighbors(u) {
            if let Some(mask) = disabled {
                if mask[h.edge as usize] {
                    continue;
                }
            }
            let nd = d + h.weight;
            if nd < dist[h.to as usize] {
                dist[h.to as usize] = nd;
                parent_edge[h.to as usize] = h.edge;
                parent_node[h.to as usize] = u;
                heap.push(HeapItem {
                    dist: nd,
                    node: h.to,
                });
            }
        }
    }
    DIJKSTRA_SETTLED.add(settled_count);
    ShortestPaths {
        source,
        dist,
        parent_edge,
        parent_node,
    }
}

/// Extract the path from the SSSP tree to `target`, or `None` if
/// unreachable.
pub fn extract_path(sp: &ShortestPaths, target: NodeId) -> Option<Path> {
    if !sp.reached(target) {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut v = target;
    while v != sp.source {
        let e = sp.parent_edge[v as usize];
        let p = sp.parent_node[v as usize];
        debug_assert!(e != EdgeId::MAX && p != NodeId::MAX);
        edges.push(e);
        nodes.push(p);
        v = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path {
        nodes,
        edges,
        total_weight: sp.dist[target as usize],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 --1-- 1 --1-- 2
    ///  \------5------/
    fn small() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        b.build()
    }

    #[test]
    fn prefers_two_hop_path() {
        let g = small();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        let p = extract_path(&sp, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 2]);
        assert_eq!(p.num_hops(), 2);
        assert_eq!(p.total_weight, 2.0);
    }

    #[test]
    fn masked_edge_forces_detour() {
        let g = small();
        let mut disabled = vec![false; g.num_edges()];
        disabled[0] = true; // kill 0-1
        let sp = dijkstra_with_mask(&g, 0, &disabled, None);
        assert_eq!(sp.dist[2], 5.0);
        let p = extract_path(&sp, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 2]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        // 2,3 disconnected from 0,1; 2-3 connected.
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert!(!sp.reached(2));
        assert!(extract_path(&sp, 3).is_none());
    }

    #[test]
    fn source_path_is_trivial() {
        let g = small();
        let sp = dijkstra(&g, 1);
        let p = extract_path(&sp, 1).unwrap();
        assert_eq!(p.nodes, vec![1]);
        assert!(p.edges.is_empty());
        assert_eq!(p.total_weight, 0.0);
    }

    #[test]
    fn early_exit_still_correct_for_target() {
        let g = small();
        let sp = dijkstra_with_mask(&g, 0, &vec![false; 3], Some(2));
        assert_eq!(sp.dist[2], 2.0);
        assert!(extract_path(&sp, 2).is_some());
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.0);
        b.add_edge(1, 2, 0.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 0.0);
        assert_eq!(extract_path(&sp, 2).unwrap().num_hops(), 2);
    }

    #[test]
    fn grid_distances_match_manhattan() {
        // 5x5 unit grid: distance == Manhattan distance.
        let n = 5;
        let id = |r: u32, c: u32| r * n + c;
        let mut b = GraphBuilder::new((n * n) as usize);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.add_edge(id(r, c), id(r, c + 1), 1.0);
                }
                if r + 1 < n {
                    b.add_edge(id(r, c), id(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let sp = dijkstra(&g, 0);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(sp.dist[id(r, c) as usize], (r + c) as f64);
            }
        }
    }
}
