//! # leo-graph — graph algorithms for dynamic satellite-network snapshots
//!
//! A LEO network snapshot is a weighted undirected graph whose nodes are
//! satellites, ground terminals, relays, and aircraft, and whose edge
//! weights are propagation delays (or distances). This crate provides the
//! algorithms the paper's experiments need:
//!
//! * [`Graph`] — a compact CSR adjacency structure with stable edge ids,
//!   built once per snapshot.
//! * [`dijkstra`] / [`dijkstra_with_mask`] — single-source shortest paths
//!   (the latency experiments run one SSSP per unique source city), and
//!   [`DijkstraWorkspace`] — reusable generation-stamped buffers so hot
//!   loops pay O(touched) reset instead of per-call allocation (the
//!   `_with` variants of every multi-path routine accept one).
//! * [`k_edge_disjoint_paths`] — the iterative shortest-path/edge-removal
//!   scheme used for the throughput experiments' `k` sub-flows per pair.
//! * [`connected_components`] — for the "fraction of satellites entirely
//!   disconnected under BP" statistic (§5).
//! * [`max_flow`] — Dinic's algorithm, used to reproduce the "lax"
//!   one-big-sink max-flow model of prior work that the paper criticizes.
//! * [`suurballe`] — the optimal two-edge-disjoint-path algorithm, and
//!   [`yen_k_shortest`] — k shortest loopless paths; both feed the
//!   routing-scheme ablations (the paper's §5 "superior routing" future
//!   work).
//!
//! Everything is synchronous and allocation-conscious: snapshot graphs have
//! ~10⁵ nodes and ~10⁶ edges and the experiments run thousands of queries
//! per snapshot.

mod components;
mod disjoint;
mod graph;
mod maxflow;
mod shortest;
mod suurballe;
mod yen;

pub use components::{component_sizes, connected_components};
pub use disjoint::{k_edge_disjoint_paths, k_edge_disjoint_paths_with};
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
pub use maxflow::{max_flow, max_flow_with, FlowNetwork, MaxFlowWorkspace};
pub use shortest::{
    dijkstra, dijkstra_with_mask, extract_path, with_thread_workspace, DijkstraWorkspace, Path,
    ShortestPaths, SptWorkspace, SsspView,
};
pub use suurballe::{suurballe, suurballe_with};
pub use yen::{yen_k_shortest, yen_k_shortest_with};
