//! Dinic's maximum-flow algorithm on floating-point capacities.
//!
//! Used to reproduce the "lax" throughput model of prior work (del Portillo
//! et al. 2019) that the paper criticizes in §3: all traffic entering the
//! constellation may exit anywhere, so the network is treated as a single
//! max-flow instance from many sources to one large sink. Comparing that
//! number against the per-pair max-min-fair allocation (crate `leo-flow`)
//! shows how much the lax model overstates achievable throughput.

/// A directed flow network with f64 capacities.
///
/// Undirected links are modelled as two directed arcs of the same
/// capacity. Capacities below [`FlowNetwork::EPS`] are treated as zero.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Per-arc target node.
    to: Vec<u32>,
    /// Per-arc residual capacity.
    cap: Vec<f64>,
    /// Head of adjacency list per node (arc index), u32::MAX = none.
    head: Vec<u32>,
    /// Next arc in adjacency list.
    next: Vec<u32>,
}

impl FlowNetwork {
    /// Capacities below this are considered exhausted; guards against
    /// floating-point residue causing livelock.
    pub const EPS: f64 = 1e-9;

    /// Create a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![u32::MAX; n],
            next: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    fn push_arc(&mut self, u: u32, v: u32, c: f64) {
        let id = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(c);
        self.next.push(self.head[u as usize]);
        self.head[u as usize] = id;
    }

    /// Add a directed edge `u → v` with capacity `c` (and its residual
    /// reverse arc).
    pub fn add_directed(&mut self, u: u32, v: u32, c: f64) {
        // lint: allow(panic-reachable) caller contract: capacities must be finite and non-negative or the residual network corrupts
        assert!(c >= 0.0 && c.is_finite());
        self.push_arc(u, v, c);
        self.push_arc(v, u, 0.0);
    }

    /// Add an undirected edge of capacity `c` in each direction.
    pub fn add_undirected(&mut self, u: u32, v: u32, c: f64) {
        // lint: allow(panic-reachable) caller contract: capacities must be finite and non-negative or the residual network corrupts
        assert!(c >= 0.0 && c.is_finite());
        self.push_arc(u, v, c);
        self.push_arc(v, u, c);
    }
}

/// Reusable buffers for [`max_flow_with`], in the same spirit as
/// `DijkstraWorkspace`: create once, feed to every call, and the BFS
/// level array, DFS arc cursors, and BFS queue stop being per-call
/// allocations. Buffers grow monotonically to the largest network seen.
#[derive(Debug, Default)]
pub struct MaxFlowWorkspace {
    /// BFS level per node (−1 = unreached).
    level: Vec<i32>,
    /// Current-arc DFS cursor per node.
    it: Vec<u32>,
    /// BFS queue.
    queue: std::collections::VecDeque<u32>,
}

impl MaxFlowWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute the maximum flow from `s` to `t`, consuming the network's
/// residual capacities.
///
/// Allocates fresh scratch per call; hot loops should hold a
/// [`MaxFlowWorkspace`] and call [`max_flow_with`] instead.
pub fn max_flow(net: &mut FlowNetwork, s: u32, t: u32) -> f64 {
    max_flow_with(net, s, t, &mut MaxFlowWorkspace::new())
}

/// [`max_flow`] with caller-provided scratch buffers. Identical results;
/// zero allocation once the workspace has grown to the network size.
// lint: hot-path
pub fn max_flow_with(net: &mut FlowNetwork, s: u32, t: u32, ws: &mut MaxFlowWorkspace) -> f64 {
    // lint: allow(panic-reachable) degenerate query: max flow from a node to itself is rejected by contract
    assert_ne!(s, t);
    let n = net.num_nodes();
    let mut total = 0.0;
    ws.level.resize(n, -1);
    ws.it.resize(n, u32::MAX);
    loop {
        // BFS to build the level graph.
        for l in ws.level[..n].iter_mut() {
            *l = -1;
        }
        ws.level[s as usize] = 0;
        ws.queue.clear();
        ws.queue.push_back(s);
        while let Some(u) = ws.queue.pop_front() {
            let mut a = net.head[u as usize];
            while a != u32::MAX {
                let v = net.to[a as usize];
                if net.cap[a as usize] > FlowNetwork::EPS && ws.level[v as usize] < 0 {
                    ws.level[v as usize] = ws.level[u as usize] + 1;
                    ws.queue.push_back(v);
                }
                a = net.next[a as usize];
            }
        }
        if ws.level[t as usize] < 0 {
            break;
        }
        ws.it[..n].copy_from_slice(&net.head);
        // DFS blocking flow.
        loop {
            let pushed = dfs(net, s, t, f64::INFINITY, &ws.level[..n], &mut ws.it[..n]);
            if pushed <= FlowNetwork::EPS {
                break;
            }
            total += pushed;
        }
    }
    total
}

fn dfs(net: &mut FlowNetwork, u: u32, t: u32, limit: f64, level: &[i32], it: &mut [u32]) -> f64 {
    if u == t {
        return limit;
    }
    while it[u as usize] != u32::MAX {
        let a = it[u as usize];
        let v = net.to[a as usize];
        if net.cap[a as usize] > FlowNetwork::EPS && level[v as usize] == level[u as usize] + 1 {
            let pushed = dfs(net, v, t, limit.min(net.cap[a as usize]), level, it);
            if pushed > FlowNetwork::EPS {
                net.cap[a as usize] -= pushed;
                net.cap[(a ^ 1) as usize] += pushed;
                return pushed;
            }
        }
        it[u as usize] = net.next[a as usize];
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_directed(0, 1, 5.0);
        assert!((max_flow(&mut net, 0, 1) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two routes of cap 3 and 2, plus cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_directed(0, 1, 3.0);
        net.add_directed(0, 2, 2.0);
        net.add_directed(1, 3, 2.0);
        net.add_directed(2, 3, 3.0);
        net.add_directed(1, 2, 5.0);
        assert!((max_flow(&mut net, 0, 3) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_limits_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_directed(0, 1, 100.0);
        net.add_directed(1, 2, 1.5);
        assert!((max_flow(&mut net, 0, 2) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_directed(0, 1, 5.0);
        assert_eq!(max_flow(&mut net, 0, 2), 0.0);
    }

    #[test]
    fn undirected_edge_carries_both_ways() {
        let mut net = FlowNetwork::new(2);
        net.add_undirected(0, 1, 4.0);
        assert!((max_flow(&mut net, 0, 1) - 4.0).abs() < 1e-9);
        let mut net2 = FlowNetwork::new(2);
        net2.add_undirected(0, 1, 4.0);
        assert!((max_flow(&mut net2, 1, 0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn super_source_sink_pattern() {
        // Two sources (1,2) with supply 10 each, one sink 3 with demand 5:
        // flow is limited by the sink-side arc.
        let mut net = FlowNetwork::new(5);
        let (s, t) = (0u32, 4u32);
        net.add_directed(s, 1, 10.0);
        net.add_directed(s, 2, 10.0);
        net.add_directed(1, 3, 4.0);
        net.add_directed(2, 3, 4.0);
        net.add_directed(3, t, 5.0);
        assert!((max_flow(&mut net, s, t) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_matches_fresh_across_sizes() {
        // One workspace reused across networks of different sizes must
        // give the same flows as fresh per-call scratch.
        let mut ws = MaxFlowWorkspace::new();
        let build_small = || {
            let mut net = FlowNetwork::new(4);
            net.add_directed(0, 1, 3.0);
            net.add_directed(0, 2, 2.0);
            net.add_directed(1, 3, 2.0);
            net.add_directed(2, 3, 3.0);
            net.add_directed(1, 2, 5.0);
            net
        };
        let build_big = || {
            let mut net = FlowNetwork::new(10);
            for i in 0..9u32 {
                net.add_directed(i, i + 1, 1.0 + i as f64 * 0.25);
            }
            net.add_directed(0, 5, 0.5);
            net
        };
        for _ in 0..3 {
            let (mut a, mut b) = (build_small(), build_small());
            assert_eq!(
                max_flow_with(&mut a, 0, 3, &mut ws).to_bits(),
                max_flow(&mut b, 0, 3).to_bits()
            );
            let (mut a, mut b) = (build_big(), build_big());
            assert_eq!(
                max_flow_with(&mut a, 0, 9, &mut ws).to_bits(),
                max_flow(&mut b, 0, 9).to_bits()
            );
        }
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_directed(0, 1, 0.25);
        net.add_directed(0, 2, 0.5);
        net.add_directed(1, 2, 1.0);
        assert!((max_flow(&mut net, 0, 2) - 0.75).abs() < 1e-9);
    }
}
