//! Compact undirected weighted graph in CSR (compressed sparse row) form.

/// Node index within a [`Graph`].
pub type NodeId = u32;

/// Stable identifier of an undirected edge: the index in insertion order.
/// Both directed half-edges of an undirected edge share one `EdgeId`, which
/// lets callers disable an edge once and have both directions disappear
/// (used by the k-edge-disjoint-paths routine and by link-failure
/// injection).
pub type EdgeId = u32;

/// Builder that accumulates undirected edges, then freezes into a
/// [`Graph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// (u, v, weight) per undirected edge, in insertion order.
    edges: Vec<(NodeId, NodeId, f64)>,
    /// CSR fill cursor, reused across [`GraphBuilder::build_into`] calls.
    cursor: Vec<u32>,
}

impl GraphBuilder {
    /// Create a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// Reset for reuse: drop all accumulated edges and adopt a new node
    /// count, keeping the allocations. The builder behaves exactly like a
    /// fresh [`GraphBuilder::new`] afterwards.
    pub fn reset(&mut self, num_nodes: usize) {
        self.num_nodes = num_nodes;
        self.edges.clear();
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge of the given non-negative weight, returning
    /// its stable [`EdgeId`].
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, on self-loops, or if the
    /// weight is negative or non-finite (Dijkstra's precondition).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> EdgeId {
        // lint: allow(panic-reachable) documented `# Panics` contract guarding Dijkstra's preconditions at graph construction time
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        // lint: allow(panic-reachable) documented `# Panics` contract guarding Dijkstra's preconditions at graph construction time
        assert!((v as usize) < self.num_nodes, "node {v} out of range");
        // lint: allow(panic-reachable) documented `# Panics` contract guarding Dijkstra's preconditions at graph construction time
        assert_ne!(u, v, "self-loops are not allowed");
        // lint: allow(panic-reachable) documented `# Panics` contract guarding Dijkstra's preconditions at graph construction time
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        let id = self.edges.len() as EdgeId;
        self.edges.push((u, v, weight));
        id
    }

    /// Freeze into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        let mut g = Graph {
            offsets: Vec::new(),
            adj: Vec::new(),
            edges: Vec::new(),
        };
        self.build_into(&mut g);
        g
    }

    /// Freeze into `out`, overwriting its contents and reusing its
    /// allocations — the zero-alloc path for rebuilding a graph every
    /// instant of a time sweep. The result is element-for-element
    /// identical to [`GraphBuilder::build`]; the builder keeps its edges
    /// and can be rebuilt again (call [`GraphBuilder::reset`] to start a
    /// new edge set).
    // lint: hot-path
    pub fn build_into(&mut self, out: &mut Graph) {
        let n = self.num_nodes;
        out.offsets.clear();
        out.offsets.resize(n + 1, 0);
        for &(u, v, _) in &self.edges {
            out.offsets[u as usize + 1] += 1;
            out.offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            out.offsets[i + 1] += out.offsets[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&out.offsets[..n]);
        out.adj.clear();
        out.adj.resize(
            2 * self.edges.len(),
            HalfEdge {
                to: 0,
                weight: 0.0,
                edge: 0,
            },
        );
        for (id, &(u, v, w)) in self.edges.iter().enumerate() {
            let id = id as EdgeId;
            out.adj[self.cursor[u as usize] as usize] = HalfEdge {
                to: v,
                weight: w,
                edge: id,
            };
            self.cursor[u as usize] += 1;
            out.adj[self.cursor[v as usize] as usize] = HalfEdge {
                to: u,
                weight: w,
                edge: id,
            };
            self.cursor[v as usize] += 1;
        }
        out.edges.clear();
        out.edges.extend_from_slice(&self.edges);
    }
}

/// One directed half of an undirected edge, as stored in the adjacency
/// array.
#[derive(Debug, Clone, Copy)]
pub struct HalfEdge {
    /// Target node.
    pub to: NodeId,
    /// Edge weight (e.g. propagation delay in seconds).
    pub weight: f64,
    /// Stable undirected edge id.
    pub edge: EdgeId,
}

/// Immutable CSR graph. Build with [`GraphBuilder`].
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    adj: Vec<HalfEdge>,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl Default for Graph {
    /// An empty zero-node graph — a valid [`GraphBuilder::build_into`]
    /// target.
    fn default() -> Self {
        GraphBuilder::new(0).build()
    }
}

impl Graph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of node `u` (with weights and edge ids).
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[HalfEdge] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Endpoints and weight of undirected edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, f64) {
        self.edges[e as usize]
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn csr_adjacency_complete() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2, "triangle node degree");
        }
        let mut n0: Vec<u32> = g.neighbors(0).iter().map(|h| h.to).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn edge_ids_stable_in_insertion_order() {
        let mut b = GraphBuilder::new(4);
        let e0 = b.add_edge(0, 1, 1.0);
        let e1 = b.add_edge(2, 3, 5.0);
        assert_eq!((e0, e1), (0, 1));
        let g = b.build();
        assert_eq!(g.edge(0), (0, 1, 1.0));
        assert_eq!(g.edge(1), (2, 3, 5.0));
    }

    #[test]
    fn half_edges_share_edge_id() {
        let g = triangle();
        for u in 0..3u32 {
            for h in g.neighbors(u) {
                let (a, b, w) = g.edge(h.edge);
                assert!(a == u || b == u);
                assert_eq!(w, h.weight);
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, -1.0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(10).build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn build_into_reuse_matches_fresh_build() {
        let mut builder = GraphBuilder::new(0);
        let mut g = Graph::default();
        // Two rebuild rounds with different shapes through the same
        // builder + graph: contents must match a from-scratch build.
        for round in 0..2 {
            let n = 5 + round * 3;
            builder.reset(n);
            let mut fresh = GraphBuilder::new(n);
            for i in 0..(n as u32 - 1) {
                let w = (i as f64) * 0.5 + round as f64;
                builder.add_edge(i, i + 1, w);
                fresh.add_edge(i, i + 1, w);
            }
            builder.add_edge(0, n as u32 - 1, 9.0);
            fresh.add_edge(0, n as u32 - 1, 9.0);
            builder.build_into(&mut g);
            let f = fresh.build();
            assert_eq!(g.num_nodes(), f.num_nodes());
            assert_eq!(g.num_edges(), f.num_edges());
            for u in 0..n as NodeId {
                let (a, b) = (g.neighbors(u), f.neighbors(u));
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to, y.to);
                    assert_eq!(x.edge, y.edge);
                    assert_eq!(x.weight.to_bits(), y.weight.to_bits());
                }
            }
            for e in 0..g.num_edges() as EdgeId {
                assert_eq!(g.edge(e), f.edge(e));
            }
        }
    }

    #[test]
    fn parallel_edges_kept_distinct() {
        // Parallel edges model e.g. two frequency channels; both must
        // survive with distinct ids.
        let mut b = GraphBuilder::new(2);
        let e0 = b.add_edge(0, 1, 1.0);
        let e1 = b.add_edge(0, 1, 2.0);
        assert_ne!(e0, e1);
        let g = b.build();
        assert_eq!(g.degree(0), 2);
    }
}
