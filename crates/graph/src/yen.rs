//! Yen's algorithm: the k shortest **loopless** paths (not necessarily
//! disjoint).
//!
//! Complements the disjoint-path routines: congestion-aware routing
//! schemes (the paper's §5 "superior routing" future work) want several
//! near-shortest candidates per pair to choose among, even when they
//! share edges.

use crate::graph::{Graph, NodeId};
use crate::shortest::{DijkstraWorkspace, Path};

/// The up-to-`k` shortest loopless paths from `source` to `target`,
/// ordered by total weight (ties broken deterministically by node
/// sequence).
pub fn yen_k_shortest(g: &Graph, source: NodeId, target: NodeId, k: usize) -> Vec<Path> {
    yen_k_shortest_with(g, source, target, k, &mut DijkstraWorkspace::new())
}

/// [`yen_k_shortest`] reusing the caller's warm workspace: the SSSP
/// buffers and the spur-node edge mask are amortized across the many
/// Dijkstra runs this algorithm makes.
pub fn yen_k_shortest_with(
    g: &Graph,
    source: NodeId,
    target: NodeId,
    k: usize,
    ws: &mut DijkstraWorkspace,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let mut disabled = ws.take_mask(g.num_edges());
    let first = ws.run(g, source, None, Some(target)).extract_path(target);
    let Some(first) = first else {
        ws.put_mask(disabled);
        return Vec::new();
    };
    let mut confirmed: Vec<Path> = vec![first];
    // Candidate set; tiny k means a sorted Vec is simpler and fast
    // enough.
    let mut candidates: Vec<Path> = Vec::new();

    while confirmed.len() < k {
        let Some(last) = confirmed.last().cloned() else {
            break; // unreachable: `confirmed` starts non-empty and only grows
        };
        // Each node of the previous path (except target) is a spur node.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_edges = &last.edges[..spur_idx];
            let root_weight: f64 = root_edges.iter().map(|&e| g.edge(e).2).sum();

            disabled.fill(false);
            // Remove edges that would recreate an already-confirmed path
            // sharing this root.
            for p in confirmed.iter().chain(candidates.iter()) {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root_nodes {
                    if let Some(&e) = p.edges.get(spur_idx) {
                        disabled[e as usize] = true;
                    }
                }
            }
            // Loopless: forbid revisiting root nodes (except the spur
            // node) by disabling all their incident edges.
            for &n in &root_nodes[..spur_idx] {
                for h in g.neighbors(n) {
                    disabled[h.edge as usize] = true;
                }
            }

            let spur = ws
                .run(g, spur_node, Some(&disabled), Some(target))
                .extract_path(target);
            if let Some(spur_path) = spur {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur_path.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur_path.edges);
                let cand = Path {
                    nodes,
                    edges,
                    total_weight: root_weight + spur_path.total_weight,
                };
                // Dedup candidates by node sequence.
                if !candidates.iter().any(|c| c.nodes == cand.nodes)
                    && !confirmed.iter().any(|c| c.nodes == cand.nodes)
                {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| {
            a.total_weight
                .total_cmp(&b.total_weight)
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
        confirmed.push(candidates.remove(0));
    }
    ws.put_mask(disabled);
    confirmed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Classic Yen example graph.
    fn sample() -> Graph {
        let mut b = GraphBuilder::new(6);
        // c=0, d=1, e=2, f=3, g=4, h=5
        b.add_edge(0, 1, 3.0); // c-d
        b.add_edge(0, 2, 2.0); // c-e
        b.add_edge(1, 3, 4.0); // d-f
        b.add_edge(2, 1, 1.0); // e-d
        b.add_edge(2, 3, 2.0); // e-f
        b.add_edge(2, 4, 3.0); // e-g
        b.add_edge(3, 4, 2.0); // f-g
        b.add_edge(3, 5, 1.0); // f-h
        b.add_edge(4, 5, 2.0); // g-h
        b.build()
    }

    #[test]
    fn first_path_is_shortest() {
        let g = sample();
        let ps = yen_k_shortest(&g, 0, 5, 3);
        assert!(!ps.is_empty());
        assert!((ps[0].total_weight - 5.0).abs() < 1e-9, "c-e-f-h = 5");
        assert_eq!(ps[0].nodes, vec![0, 2, 3, 5]);
    }

    #[test]
    fn weights_non_decreasing_and_distinct() {
        let g = sample();
        let ps = yen_k_shortest(&g, 0, 5, 5);
        assert!(ps.len() >= 3);
        for w in ps.windows(2) {
            assert!(w[1].total_weight >= w[0].total_weight - 1e-12);
            assert_ne!(w[0].nodes, w[1].nodes, "paths must be distinct");
        }
    }

    #[test]
    fn paths_are_loopless() {
        let g = sample();
        for p in yen_k_shortest(&g, 0, 5, 6) {
            let mut seen = std::collections::HashSet::new();
            for n in &p.nodes {
                assert!(seen.insert(*n), "node {n} repeated");
            }
        }
    }

    #[test]
    fn k_one_equals_dijkstra() {
        let g = sample();
        let ps = yen_k_shortest(&g, 0, 5, 1);
        assert_eq!(ps.len(), 1);
        let sp = crate::dijkstra(&g, 0);
        assert!((ps[0].total_weight - sp.dist[5]).abs() < 1e-12);
    }

    #[test]
    fn exhausts_small_graphs() {
        // Triangle: exactly two loopless 0→2 paths.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let ps = yen_k_shortest(&g, 0, 2, 10);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].total_weight, 2.0);
        assert_eq!(ps[1].total_weight, 5.0);
    }

    #[test]
    fn warm_workspace_matches_fresh() {
        let g = sample();
        let mut ws = DijkstraWorkspace::new();
        for k in [1usize, 3, 6] {
            let fresh = yen_k_shortest(&g, 0, 5, k);
            let warm = yen_k_shortest_with(&g, 0, 5, k, &mut ws);
            assert_eq!(fresh, warm);
        }
    }

    #[test]
    fn unreachable_and_zero_k() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert!(yen_k_shortest(&g, 0, 2, 4).is_empty());
        assert!(yen_k_shortest(&g, 0, 1, 0).is_empty());
    }
}
