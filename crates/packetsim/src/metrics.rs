//! Per-flow delivery and delay statistics.

/// Accumulates per-flow statistics during a run.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlowAccumulator {
    pub emitted: u64,
    pub delivered: u64,
    pub dropped: u64,
    delays: Vec<f64>,
    /// RFC 3550 §6.4.1 smoothed interarrival jitter state.
    last_transit: Option<f64>,
    jitter: f64,
}

impl FlowAccumulator {
    pub fn record_delivery(&mut self, delay_s: f64) {
        self.delivered += 1;
        self.delays.push(delay_s);
        if let Some(prev) = self.last_transit {
            let d = (delay_s - prev).abs();
            self.jitter += (d - self.jitter) / 16.0;
        }
        self.last_transit = Some(delay_s);
    }

    pub fn finish(mut self) -> FlowReport {
        self.delays.sort_by(f64::total_cmp);
        let n = self.delays.len();
        let mean = if n == 0 {
            0.0
        } else {
            self.delays.iter().sum::<f64>() / n as f64
        };
        let pick = |p: f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                self.delays[((n as f64 - 1.0) * p).round() as usize]
            }
        };
        FlowReport {
            emitted: self.emitted,
            delivered: self.delivered,
            dropped: self.dropped,
            mean_delay_s: mean,
            p50_delay_s: pick(0.50),
            p99_delay_s: pick(0.99),
            max_delay_s: self.delays.last().copied().unwrap_or(0.0),
            jitter_s: self.jitter,
        }
    }
}

/// Final statistics of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowReport {
    /// Packets the source emitted.
    pub emitted: u64,
    /// Packets that reached the destination.
    pub delivered: u64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Mean end-to-end delay, s.
    pub mean_delay_s: f64,
    /// Median end-to-end delay, s.
    pub p50_delay_s: f64,
    /// 99th-percentile end-to-end delay, s.
    pub p99_delay_s: f64,
    /// Worst delay, s.
    pub max_delay_s: f64,
    /// RFC-3550-style smoothed delay jitter, s.
    pub jitter_s: f64,
}

impl FlowReport {
    /// Delivered fraction of emitted packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.delivered as f64 / self.emitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_delay_has_zero_jitter() {
        let mut acc = FlowAccumulator {
            emitted: 5,
            ..Default::default()
        };
        for _ in 0..5 {
            acc.record_delivery(0.010);
        }
        let r = acc.finish();
        assert_eq!(r.delivered, 5);
        assert_eq!(r.jitter_s, 0.0);
        assert_eq!(r.mean_delay_s, 0.010);
        assert_eq!(r.p99_delay_s, 0.010);
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn varying_delay_produces_jitter() {
        let mut acc = FlowAccumulator {
            emitted: 4,
            ..Default::default()
        };
        for d in [0.010, 0.020, 0.010, 0.020] {
            acc.record_delivery(d);
        }
        let r = acc.finish();
        assert!(r.jitter_s > 0.0);
        assert!((r.mean_delay_s - 0.015).abs() < 1e-12);
        assert_eq!(r.max_delay_s, 0.020);
    }

    #[test]
    fn empty_flow_report() {
        let acc = FlowAccumulator::default();
        let r = acc.finish();
        assert_eq!(r.delivery_ratio(), 0.0);
        assert_eq!(r.mean_delay_s, 0.0);
    }

    #[test]
    fn percentiles_ordered() {
        let mut acc = FlowAccumulator {
            emitted: 100,
            ..Default::default()
        };
        for i in 0..100 {
            acc.record_delivery(0.001 * (i as f64 + 1.0));
        }
        let r = acc.finish();
        assert!(r.p50_delay_s <= r.p99_delay_s);
        assert!(r.p99_delay_s <= r.max_delay_s);
    }
}
