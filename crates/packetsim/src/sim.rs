//! The store-and-forward simulator core.

use crate::event::{Event, EventQueue};
use crate::metrics::{FlowAccumulator, FlowReport};
use leo_util::telemetry::{Counter, Histogram};
use std::collections::VecDeque;

/// Telemetry: simulator runs.
static SIM_RUNS: Counter = Counter::new("packetsim_runs");
/// Telemetry: total events processed across runs.
static SIM_EVENTS: Counter = Counter::new("packetsim_events");
/// Telemetry: packets dropped at full queues, across runs.
static SIM_DROPS: Counter = Counter::new("packetsim_drops");
/// Telemetry: queue depth (bytes) observed at each enqueue.
static SIM_QUEUE_BYTES: Histogram = Histogram::new("packetsim_queue_bytes");

/// Identifier of a unidirectional link.
pub type LinkId = u32;

/// Identifier of a flow.
pub type FlowId = u32;

/// A source-routed flow: constant bit-rate, optionally shaped into
/// deterministic on/off bursts.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Links traversed, in order. Must be non-empty.
    pub path: Vec<LinkId>,
    /// Offered *average* rate, bits per second.
    pub rate_bps: f64,
    /// Packet size, bytes.
    pub packet_bytes: u32,
    /// First emission time, s.
    pub start_s: f64,
    /// No emissions at or after this time, s.
    pub stop_s: f64,
    /// Optional on/off burst shaping `(period_s, duty)`: the flow emits
    /// at `rate / duty` during the first `duty` fraction of each period
    /// and is silent otherwise, keeping the same average rate. This is
    /// the deterministic stand-in for bursty cross traffic; `None` is
    /// smooth CBR.
    pub burst: Option<(f64, f64)>,
}

impl FlowSpec {
    /// A smooth constant-bit-rate flow.
    pub fn cbr(
        path: Vec<LinkId>,
        rate_bps: f64,
        packet_bytes: u32,
        start_s: f64,
        stop_s: f64,
    ) -> Self {
        Self {
            path,
            rate_bps,
            packet_bytes,
            start_s,
            stop_s,
            burst: None,
        }
    }

    /// Time of the emission after one at `now`, honoring burst shaping.
    fn next_emission(&self, now: f64) -> f64 {
        let smooth_interval = self.packet_bytes as f64 * 8.0 / self.rate_bps;
        match self.burst {
            None => now + smooth_interval,
            Some((period, duty)) => {
                let interval = smooth_interval * duty;
                let next = now + interval;
                let phase = (next - self.start_s).rem_euclid(period);
                if phase < period * duty {
                    next
                } else {
                    // Jump to the start of the next on-phase.
                    next - phase + period
                }
            }
        }
    }
}

#[derive(Debug)]
struct Link {
    rate_bps: f64,
    delay_s: f64,
    queue_limit_bytes: u64,
    /// Queued packets: (flow, seq, hop, sent_s).
    queue: VecDeque<(u32, u64, u32, f64)>,
    queued_bytes: u64,
    busy: bool,
}

/// The simulator: build links and flows, then [`PacketSim::run`].
#[derive(Debug, Default)]
pub struct PacketSim {
    links: Vec<Link>,
    flows: Vec<FlowSpec>,
}

/// Results of a run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-flow statistics, indexed by [`FlowId`].
    pub flows: Vec<FlowReport>,
    /// Total events processed (a determinism/regression handle).
    pub events_processed: u64,
    /// Simulation time of the last processed event, s.
    pub end_time_s: f64,
}

impl PacketSim {
    /// An empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a unidirectional link: `rate_bps` transmitter feeding a wire
    /// of `delay_s` propagation, guarded by a `queue_limit_bytes`
    /// drop-tail FIFO.
    pub fn add_link(&mut self, rate_bps: f64, delay_s: f64, queue_limit_bytes: u64) -> LinkId {
        // lint: allow(panic-reachable) spec validation at setup time; a malformed link/flow spec must fail before the event loop starts
        assert!(rate_bps > 0.0 && delay_s >= 0.0);
        self.links.push(Link {
            rate_bps,
            delay_s,
            queue_limit_bytes,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
        });
        (self.links.len() - 1) as LinkId
    }

    /// Add a flow.
    ///
    /// # Panics
    /// Panics on an empty path, non-positive rate, zero-size packets, or
    /// a link id out of range.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        // lint: allow(panic-reachable) spec validation at setup time; a malformed link/flow spec must fail before the event loop starts
        assert!(!spec.path.is_empty(), "flow path must be non-empty");
        // lint: allow(panic-reachable) spec validation at setup time; a malformed link/flow spec must fail before the event loop starts
        assert!(spec.rate_bps > 0.0 && spec.packet_bytes > 0);
        // lint: allow(panic-reachable) spec validation at setup time; a malformed link/flow spec must fail before the event loop starts
        assert!(spec.stop_s >= spec.start_s);
        if let Some((period, duty)) = spec.burst {
            // lint: allow(panic-reachable) spec validation at setup time; a malformed link/flow spec must fail before the event loop starts
            assert!(period > 0.0 && duty > 0.0 && duty <= 1.0, "bad burst shape");
        }
        for &l in &spec.path {
            // lint: allow(panic-reachable) spec validation at setup time; a malformed link/flow spec must fail before the event loop starts
            assert!((l as usize) < self.links.len(), "link {l} out of range");
        }
        self.flows.push(spec);
        (self.flows.len() - 1) as FlowId
    }

    /// Run until the event queue drains or simulated time exceeds
    /// `until_s`, and return per-flow statistics.
    pub fn run(mut self, until_s: f64) -> SimReport {
        let mut queue = EventQueue::default();
        let mut acc: Vec<FlowAccumulator> = self
            .flows
            .iter()
            .map(|_| FlowAccumulator::default())
            .collect();
        for (f, spec) in self.flows.iter().enumerate() {
            if spec.start_s < spec.stop_s {
                queue.push(spec.start_s, Event::FlowEmit { flow: f as u32 });
            }
        }
        let mut events = 0u64;
        let mut now = 0.0f64;
        while let Some(sch) = queue.pop() {
            if sch.t_s > until_s {
                break;
            }
            now = sch.t_s;
            events += 1;
            match sch.event {
                Event::FlowEmit { flow } => {
                    let spec = &self.flows[flow as usize];
                    acc[flow as usize].emitted += 1;
                    queue.push(
                        now,
                        Event::PacketAtHop {
                            flow,
                            seq: acc[flow as usize].emitted,
                            hop: 0,
                            sent_s: now,
                        },
                    );
                    // Schedule the next emission.
                    let next = spec.next_emission(now);
                    if next < spec.stop_s {
                        queue.push(next, Event::FlowEmit { flow });
                    }
                }
                Event::PacketAtHop {
                    flow,
                    seq,
                    hop,
                    sent_s,
                } => {
                    let spec = &self.flows[flow as usize];
                    if hop as usize >= spec.path.len() {
                        // Destination reached.
                        acc[flow as usize].record_delivery(now - sent_s);
                        continue;
                    }
                    let link_id = spec.path[hop as usize];
                    let bytes = spec.packet_bytes as u64;
                    let link = &mut self.links[link_id as usize];
                    if link.busy {
                        if link.queued_bytes + bytes > link.queue_limit_bytes {
                            acc[flow as usize].dropped += 1;
                            SIM_DROPS.add(1);
                        } else {
                            link.queued_bytes += bytes;
                            link.queue.push_back((flow, seq, hop, sent_s));
                            SIM_QUEUE_BYTES.record(link.queued_bytes);
                        }
                    } else {
                        // Transmit immediately.
                        link.busy = true;
                        let ser = bytes as f64 * 8.0 / link.rate_bps;
                        queue.push(now + ser, Event::LinkIdle { link: link_id });
                        queue.push(
                            now + ser + link.delay_s,
                            Event::PacketAtHop {
                                flow,
                                seq,
                                hop: hop + 1,
                                sent_s,
                            },
                        );
                    }
                }
                Event::LinkIdle { link } => {
                    let l = &mut self.links[link as usize];
                    if let Some((flow, seq, hop, sent_s)) = l.queue.pop_front() {
                        let bytes = self.flows[flow as usize].packet_bytes as u64;
                        l.queued_bytes -= bytes;
                        let ser = bytes as f64 * 8.0 / l.rate_bps;
                        queue.push(now + ser, Event::LinkIdle { link });
                        queue.push(
                            now + ser + l.delay_s,
                            Event::PacketAtHop {
                                flow,
                                seq,
                                hop: hop + 1,
                                sent_s,
                            },
                        );
                    } else {
                        l.busy = false;
                    }
                }
            }
        }
        SIM_RUNS.add(1);
        SIM_EVENTS.add(events);
        SimReport {
            flows: acc.into_iter().map(FlowAccumulator::finish).collect(),
            events_processed: events,
            end_time_s: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1250-byte packets = 10,000 bits.
    const PKT: u32 = 1250;

    fn cbr(path: Vec<LinkId>, rate_bps: f64, stop_s: f64) -> FlowSpec {
        FlowSpec::cbr(path, rate_bps, PKT, 0.0, stop_s)
    }

    #[test]
    fn bursty_cross_traffic_inflates_foreground_tail() {
        let run = |burst: Option<(f64, f64)>| {
            let mut sim = PacketSim::new();
            let l = sim.add_link(10e6, 0.001, 1 << 20);
            let fg = sim.add_flow(cbr(vec![l], 1e6, 2.0));
            sim.add_flow(FlowSpec {
                path: vec![l],
                rate_bps: 7e6,
                packet_bytes: PKT,
                start_s: 0.0,
                stop_s: 2.0,
                burst,
            });
            let r = sim.run(10.0);
            r.flows[fg as usize]
        };
        let smooth = run(None);
        // 20 ms bursts at 25% duty: 28 Mbit/s peaks over a 10 Mbit/s link.
        let bursty = run(Some((0.020, 0.25)));
        assert!(
            bursty.p99_delay_s > smooth.p99_delay_s,
            "bursty p99 {} must exceed smooth {}",
            bursty.p99_delay_s,
            smooth.p99_delay_s
        );
        assert!(bursty.jitter_s > smooth.jitter_s);
    }

    #[test]
    fn burst_preserves_average_rate() {
        let mut sim = PacketSim::new();
        let l = sim.add_link(100e6, 0.001, 1 << 22);
        let f = sim.add_flow(FlowSpec {
            path: vec![l],
            rate_bps: 5e6,
            packet_bytes: PKT,
            start_s: 0.0,
            stop_s: 4.0,
            burst: Some((0.050, 0.5)),
        });
        let r = sim.run(10.0);
        let expected = 5e6 * 4.0 / (PKT as f64 * 8.0);
        let got = r.flows[f as usize].emitted as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "emitted {got} vs expected {expected}"
        );
    }

    #[test]
    fn single_link_delay_exact() {
        let mut sim = PacketSim::new();
        let l = sim.add_link(10e6, 0.005, 1 << 20);
        sim.add_flow(cbr(vec![l], 1e6, 1.0));
        let r = sim.run(5.0);
        let f = &r.flows[0];
        assert_eq!(f.dropped, 0);
        assert_eq!(f.emitted, f.delivered);
        // 10 kbit at 10 Mbit/s = 1 ms serialization + 5 ms propagation.
        assert!((f.mean_delay_s - 0.006).abs() < 1e-9, "{}", f.mean_delay_s);
        assert!(
            f.jitter_s < 1e-15,
            "uncontended CBR has no jitter: {}",
            f.jitter_s
        );
    }

    #[test]
    fn underload_delivers_everything() {
        let mut sim = PacketSim::new();
        let a = sim.add_link(20e6, 0.002, 1 << 20);
        let b = sim.add_link(20e6, 0.003, 1 << 20);
        sim.add_flow(cbr(vec![a, b], 5e6, 2.0));
        let r = sim.run(10.0);
        let f = &r.flows[0];
        assert!(f.emitted > 900, "2 s at 5 Mbit/s in 10 kbit packets = 1000");
        assert_eq!(f.delivered, f.emitted);
        // Two serializations + two propagations.
        assert!((f.mean_delay_s - (0.0005 + 0.002 + 0.0005 + 0.003)).abs() < 1e-9);
    }

    #[test]
    fn overload_drops_and_caps_throughput() {
        let mut sim = PacketSim::new();
        // 5 Mbit/s bottleneck, small queue.
        let l = sim.add_link(5e6, 0.001, 20_000);
        sim.add_flow(cbr(vec![l], 10e6, 2.0));
        let r = sim.run(10.0);
        let f = &r.flows[0];
        assert!(f.dropped > 0, "overload must drop");
        // Delivered ≈ bottleneck rate × duration / packet bits.
        let expected = 5e6 * 2.0 / (PKT as f64 * 8.0);
        assert!(
            (f.delivered as f64 - expected).abs() < expected * 0.05,
            "delivered {} vs expected {expected}",
            f.delivered
        );
    }

    #[test]
    fn competing_flows_share_fifo() {
        let mut sim = PacketSim::new();
        let l = sim.add_link(10e6, 0.001, 1 << 20);
        sim.add_flow(cbr(vec![l], 4e6, 2.0));
        sim.add_flow(cbr(vec![l], 4e6, 2.0));
        let r = sim.run(10.0);
        // Total offered 8 < 10 Mbit/s: no drops, both delivered fully.
        for f in &r.flows {
            assert_eq!(f.dropped, 0);
            assert_eq!(f.delivered, f.emitted);
        }
    }

    #[test]
    fn congestion_inflates_delay_and_jitter() {
        let light = {
            let mut sim = PacketSim::new();
            let l = sim.add_link(10e6, 0.001, 1 << 22);
            sim.add_flow(cbr(vec![l], 1e6, 2.0));
            sim.run(10.0).flows[0]
        };
        let heavy = {
            let mut sim = PacketSim::new();
            let l = sim.add_link(10e6, 0.001, 1 << 22);
            let f = sim.add_flow(cbr(vec![l], 1e6, 2.0));
            // Bursty cross traffic at 95% load.
            sim.add_flow(cbr(vec![l], 8.5e6, 2.0));
            let _ = f;
            sim.run(10.0).flows[0]
        };
        assert!(heavy.mean_delay_s > light.mean_delay_s);
        assert!(heavy.jitter_s >= light.jitter_s);
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let mut sim = PacketSim::new();
            let a = sim.add_link(10e6, 0.002, 50_000);
            let b = sim.add_link(5e6, 0.004, 50_000);
            sim.add_flow(cbr(vec![a, b], 6e6, 1.0));
            sim.add_flow(cbr(vec![b], 2e6, 1.0));
            sim
        };
        let r1 = build().run(5.0);
        let r2 = build().run(5.0);
        assert_eq!(r1.events_processed, r2.events_processed);
        assert_eq!(r1.flows, r2.flows);
    }

    #[test]
    fn until_cuts_simulation_short() {
        let mut sim = PacketSim::new();
        let l = sim.add_link(10e6, 0.001, 1 << 20);
        sim.add_flow(cbr(vec![l], 1e6, 100.0));
        let r = sim.run(1.0);
        assert!(r.end_time_s <= 1.0);
        assert!(r.flows[0].emitted < 200);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_path() {
        let mut sim = PacketSim::new();
        sim.add_flow(cbr(vec![], 1e6, 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_link() {
        let mut sim = PacketSim::new();
        sim.add_flow(cbr(vec![7], 1e6, 1.0));
    }
}
