//! # leo-packetsim — a discrete-event, packet-level network simulator
//!
//! The paper's throughput study uses a fluid model (max-min fair rates on
//! fixed paths, via floodns). Fluid models answer "how much", but not
//! "how smoothly": queueing delay and jitter — which the paper's QoE
//! discussion (§4) cares about — need packets. This crate is a compact
//! event-driven store-and-forward simulator in the spirit the networking
//! guides recommend: an explicit event queue, per-link FIFO drop-tail
//! queues, deterministic execution, no async runtime.
//!
//! Model:
//!
//! * **Links** are unidirectional: a rate (bits/s), a propagation delay
//!   (s), and a bounded FIFO queue (bytes). A packet occupies the link's
//!   transmitter for `8·bytes/rate` seconds, then arrives `delay` later.
//! * **Flows** emit fixed-size packets at constant bit-rate along a
//!   source-routed path of links.
//! * **Metrics** per flow: delivered/dropped counts, mean / max / p99
//!   end-to-end delay, and RFC-3550-style smoothed jitter.
//!
//! ```
//! use leo_packetsim::{FlowSpec, PacketSim};
//!
//! let mut sim = PacketSim::new();
//! let l = sim.add_link(10_000_000.0, 0.005, 64_000); // 10 Mbit/s, 5 ms
//! sim.add_flow(FlowSpec::cbr(vec![l], 1_000_000.0, 1250, 0.0, 1.0));
//! let report = sim.run(2.0);
//! let f = &report.flows[0];
//! assert_eq!(f.dropped, 0);
//! // Delay = serialization (1 ms) + propagation (5 ms).
//! assert!((f.mean_delay_s - 0.006).abs() < 1e-6);
//! ```

mod event;
mod metrics;
mod sim;

pub use metrics::FlowReport;
pub use sim::{FlowId, FlowSpec, LinkId, PacketSim, SimReport};
