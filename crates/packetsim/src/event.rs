//! The event queue: a deterministic min-heap of timestamped events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the simulator processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Event {
    /// A flow should emit its next packet.
    FlowEmit {
        /// Flow index.
        flow: u32,
    },
    /// A packet reaches the entrance of hop `hop` of its flow's path
    /// (after propagation from the previous hop).
    PacketAtHop {
        /// Flow index.
        flow: u32,
        /// Packet sequence number within the flow.
        seq: u64,
        /// Hop index into the flow's path.
        hop: u32,
        /// Emission timestamp (for end-to-end delay).
        sent_s: f64,
    },
    /// A link's transmitter finished serializing a packet and can take
    /// the next one from its queue.
    LinkIdle {
        /// Link index.
        link: u32,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Scheduled {
    pub t_s: f64,
    /// Tie-break sequence so simultaneous events pop in insertion order —
    /// this keeps runs bit-deterministic.
    pub order: u64,
    pub event: Event,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: reversed time, then reversed insertion order.
        other
            .t_s
            .partial_cmp(&self.t_s)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.order.cmp(&self.order))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_order: u64,
}

impl EventQueue {
    pub fn push(&mut self, t_s: f64, event: Event) {
        debug_assert!(t_s.is_finite() && t_s >= 0.0);
        self.heap.push(Scheduled {
            t_s,
            order: self.next_order,
            event,
        });
        self.next_order += 1;
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(3.0, Event::LinkIdle { link: 3 });
        q.push(1.0, Event::LinkIdle { link: 1 });
        q.push(2.0, Event::LinkIdle { link: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|s| s.t_s).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::default();
        q.push(1.0, Event::LinkIdle { link: 10 });
        q.push(1.0, Event::LinkIdle { link: 20 });
        let first = q.pop().unwrap();
        assert_eq!(first.event, Event::LinkIdle { link: 10 });
        assert_eq!(q.pop().unwrap().event, Event::LinkIdle { link: 20 });
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::default();
        assert_eq!(q.len(), 0);
        q.push(1.0, Event::FlowEmit { flow: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
