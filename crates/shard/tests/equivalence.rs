//! The tentpole contract: a `K`-sharded run — restricted contexts,
//! spill files, and all — reproduces the single-process study results
//! **bit-identically**, for both the latency fold and the throughput
//! routing + global solve.

use leo_core::experiments::latency::{latency_studies, PairStats};
use leo_core::experiments::throughput::{route_pair_paths, throughput_from_path_edges};
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_flow::FlowWorkspace;
use leo_shard::runner::{combo_tag, config_hash, run_flow_sharded, run_latency_sharded};

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("leo_shard_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn assert_stats_eq(full: &[Vec<PairStats>], merged: &[Vec<PairStats>]) {
    assert_eq!(full.len(), merged.len(), "mode count");
    for (mi, (a, b)) in full.iter().zip(merged).enumerate() {
        assert_eq!(a.len(), b.len(), "mode {mi} pair count");
        for (pi, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.pair, y.pair, "mode {mi} pair {pi}");
            assert_eq!(
                x.min_rtt_ms.map(f64::to_bits),
                y.min_rtt_ms.map(f64::to_bits),
                "mode {mi} pair {pi} min"
            );
            assert_eq!(
                x.max_rtt_ms.map(f64::to_bits),
                y.max_rtt_ms.map(f64::to_bits),
                "mode {mi} pair {pi} max"
            );
            assert_eq!(x.reachable, y.reachable, "mode {mi} pair {pi} reachable");
            assert_eq!(x.total, y.total, "mode {mi} pair {pi} total");
        }
    }
}

/// Latency: every shard count produces the exact single-process stats,
/// and different shard counts agree with each other.
#[test]
fn sharded_latency_is_bit_identical_to_single_process() {
    let cfg = ExperimentScale::Tiny.config();
    let modes = [Mode::BpOnly, Mode::Hybrid];
    let ctx = StudyContext::build(cfg.clone());
    let full = latency_studies(&ctx, &modes, 0);

    for k in [1usize, 3] {
        let dir = scratch_dir(&format!("lat{k}"));
        let (run, keepers, files) =
            run_latency_sharded(&cfg, &modes, k, &dir, "equiv").expect("sharded run");
        assert_eq!(files.len(), k);
        assert_eq!(run.shard_count, k as u32);
        assert_eq!(run.n_pairs as usize, ctx.pairs.len());
        assert_eq!(run.config_hash, config_hash(&cfg));
        assert_eq!(run.seed, cfg.seed);
        let merged = keepers.to_stats(&ctx.pairs).expect("restore stats");
        assert_stats_eq(&full, &merged);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Throughput: sharded routing + merged global solve equals routing the
/// full matrix in one process — same paths, same aggregate bits.
#[test]
fn sharded_throughput_is_bit_identical_to_single_process() {
    let cfg = ExperimentScale::Tiny.config();
    let combos = [(Mode::BpOnly, 1usize), (Mode::Hybrid, 4usize)];
    let t_s = 0.0;
    let ctx = StudyContext::build(cfg.clone());
    let modes: Vec<Mode> = vec![Mode::BpOnly, Mode::Hybrid];
    let snaps = ctx.snapshot_bundle(t_s, &modes);

    let dir = scratch_dir("flow");
    let (run, merged, files) =
        run_flow_sharded(&cfg, t_s, &combos, 2, &dir, "equiv").expect("sharded run");
    assert_eq!(files.len(), 2);
    assert_eq!(run.n_pairs as usize, ctx.pairs.len());

    for (ci, &(mode, k)) in combos.iter().enumerate() {
        let snap = &snaps[modes.iter().position(|&m| m == mode).expect("mode")];
        let full_paths: Vec<Vec<Vec<u32>>> = route_pair_paths(&ctx, snap, k)
            .into_iter()
            .map(|pair| pair.into_iter().map(|p| p.edges).collect())
            .collect();
        let combo = &merged.combos[ci];
        assert_eq!(combo.tag, combo_tag(mode, k));
        assert_eq!(combo.paths, full_paths, "combo {} paths differ", combo.tag);

        let isl = cfg.network.isl_gbps;
        let a = throughput_from_path_edges(&ctx, snap, &full_paths, isl, &mut FlowWorkspace::new());
        let b =
            throughput_from_path_edges(&ctx, snap, &combo.paths, isl, &mut FlowWorkspace::new());
        assert_eq!(a.aggregate_gbps.to_bits(), b.aggregate_gbps.to_bits());
        assert_eq!(a.routed_pairs, b.routed_pairs);
        assert_eq!(a.flows, b.flows);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
