//! Property-based tests for the shard payload codecs and merges (on
//! `leo_util::check`): encode→decode identity on random keepers, total
//! (panic-free) decoding of mutated bytes, and merge invariance across
//! random shard-arrival permutations.

use leo_core::experiments::latency::PairStats;
use leo_core::Mode;
use leo_data::traffic::CityPair;
use leo_shard::codec::{decode_shard, encode_shard, PayloadKind, ShardHeader};
use leo_shard::keepers::{
    merge_flow_shards, merge_latency_shards, FlowCombo, FlowPathsKeepers, LatencyKeepers,
};
use leo_shard::partition::ShardSpec;
use leo_util::check::{check, CaseError, Gen};
use leo_util::{check_assert, check_assert_eq};

const MODES: [Mode; 2] = [Mode::BpOnly, Mode::Hybrid];

/// Random but *internally consistent* per-pair stats: a pair is either
/// never reachable (no RTTs) or reachable `1..=total` snapshots with
/// finite `min ≤ max`.
fn arb_stats(g: &mut Gen, n_pairs: usize, total: usize) -> Vec<Vec<PairStats>> {
    let pairs: Vec<CityPair> = (0..n_pairs)
        .map(|i| CityPair {
            src: i as u32,
            dst: g.u32(1000..2000),
        })
        .collect();
    MODES
        .iter()
        .map(|_| {
            pairs
                .iter()
                .map(|&pair| {
                    if g.bool() {
                        PairStats {
                            pair,
                            min_rtt_ms: None,
                            max_rtt_ms: None,
                            reachable: 0,
                            total,
                        }
                    } else {
                        let min = g.f64(1.0..200.0);
                        let max = min + g.f64(0.0..100.0);
                        PairStats {
                            pair,
                            min_rtt_ms: Some(min),
                            max_rtt_ms: Some(max),
                            reachable: g.usize(1..total + 1),
                            total,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

fn arb_flow_keepers(g: &mut Gen, n_pairs: usize) -> FlowPathsKeepers {
    let n_combos = g.usize(1..4);
    let combos = (0..n_combos)
        .map(|c| FlowCombo {
            tag: format!("combo/k{c}"),
            paths: (0..n_pairs)
                .map(|_| {
                    g.vec(0..4, |g| {
                        let len = g.usize(1..12);
                        g.vec(len..len + 1, |g| g.u32(0..10_000))
                    })
                })
                .collect(),
        })
        .collect();
    FlowPathsKeepers { combos }
}

fn header(spec: ShardSpec, lo: u64, hi: u64, kind: PayloadKind) -> ShardHeader {
    ShardHeader {
        config_hash: 0xabcd_ef01_2345_6789,
        seed: 7,
        shard_index: spec.index as u32,
        shard_count: spec.count as u32,
        pair_lo: lo,
        pair_hi: hi,
        kind,
    }
}

/// Latency keepers survive encode→decode bit-exactly, and
/// `to_stats(from_stats(x)) == x`.
#[test]
fn latency_keepers_roundtrip() {
    check("latency_keepers_roundtrip", |g| {
        let total = g.usize(1..6);
        let n_pairs = g.usize(0..40);
        let stats = arb_stats(g, n_pairs, total);
        let keepers = LatencyKeepers::from_stats(&stats, &MODES, total as u64);
        let back = LatencyKeepers::decode(&keepers.encode())
            .map_err(|e| CaseError::fail(e.to_string()))?;
        check_assert_eq!(back, keepers);
        let pairs: Vec<CityPair> = stats[0].iter().map(|s| s.pair).collect();
        let restored = back
            .to_stats(&pairs)
            .map_err(|e| CaseError::fail(e.to_string()))?;
        for (mode_in, mode_out) in stats.iter().zip(&restored) {
            for (a, b) in mode_in.iter().zip(mode_out) {
                check_assert_eq!(a.pair, b.pair);
                check_assert_eq!(
                    a.min_rtt_ms.map(f64::to_bits),
                    b.min_rtt_ms.map(f64::to_bits)
                );
                check_assert_eq!(
                    a.max_rtt_ms.map(f64::to_bits),
                    b.max_rtt_ms.map(f64::to_bits)
                );
                check_assert_eq!(a.reachable, b.reachable);
                check_assert_eq!(a.total, b.total);
            }
        }
        Ok(())
    });
}

/// Flow-path keepers survive encode→decode exactly.
#[test]
fn flow_keepers_roundtrip() {
    check("flow_keepers_roundtrip", |g| {
        let n_pairs = g.usize(0..30);
        let keepers = arb_flow_keepers(g, n_pairs);
        let back = FlowPathsKeepers::decode(&keepers.encode())
            .map_err(|e| CaseError::fail(e.to_string()))?;
        check_assert_eq!(back, keepers);
        Ok(())
    });
}

/// Decoding is total: random byte mutations (flips and truncations) of
/// a valid payload either decode or error, never panic — and a mutated
/// *file image* never decodes at all (the checksums catch it).
#[test]
fn mutated_bytes_never_panic_and_mutated_files_never_pass() {
    check("mutated_bytes_never_panic", |g| {
        let total = g.usize(1..4);
        let n_pairs = g.usize(1..20);
        let stats = arb_stats(g, n_pairs, total);
        let keepers = LatencyKeepers::from_stats(&stats, &MODES, total as u64);
        let payload = keepers.encode();
        let spec = ShardSpec::new(0, 1).map_err(CaseError::fail)?;
        let image = encode_shard(
            &header(spec, 0, stats[0].len() as u64, PayloadKind::Latency),
            &payload,
        );

        // Raw payload mutation: decode() must stay total.
        let mut bytes = payload.clone();
        let i = g.usize(0..bytes.len());
        bytes[i] ^= 1 << g.u32(0..8);
        let _ = LatencyKeepers::decode(&bytes);
        let cut = g.usize(0..bytes.len());
        let _ = LatencyKeepers::decode(&bytes[..cut]);
        let _ = FlowPathsKeepers::decode(&bytes);

        // File-image mutation: the container must reject it outright.
        let mut img = image.clone();
        let i = g.usize(0..img.len());
        img[i] ^= 1 << g.u32(0..8);
        check_assert!(
            decode_shard(&img).is_err(),
            "bit flip at byte {i} of the file image went undetected"
        );
        Ok(())
    });
}

/// Merging the same shards in any arrival order yields the same result
/// as the identity order — and equals the unsharded keepers.
#[test]
fn latency_merge_is_order_invariant() {
    check("latency_merge_is_order_invariant", |g| {
        let total = g.usize(1..4);
        let n_pairs = g.usize(0..60);
        let k = g.usize(1..7);
        let stats = arb_stats(g, n_pairs, total);
        let full = LatencyKeepers::from_stats(&stats, &MODES, total as u64);

        let mut shards = Vec::new();
        for spec in ShardSpec::all(k) {
            let r = spec.range(n_pairs);
            let slice: Vec<Vec<PairStats>> = stats.iter().map(|m| m[r.clone()].to_vec()).collect();
            shards.push((
                header(spec, r.start as u64, r.end as u64, PayloadKind::Latency),
                LatencyKeepers::from_stats(&slice, &MODES, total as u64),
            ));
        }

        // Random permutation (Fisher–Yates on the shard list).
        let mut shuffled = shards.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.usize(0..i + 1));
        }

        let (run_a, merged_a) =
            merge_latency_shards(shards).map_err(|e| CaseError::fail(e.to_string()))?;
        let (run_b, merged_b) =
            merge_latency_shards(shuffled).map_err(|e| CaseError::fail(e.to_string()))?;
        check_assert_eq!(run_a, run_b);
        check_assert_eq!(merged_a, merged_b);
        check_assert_eq!(merged_a, full);
        check_assert_eq!(run_a.n_pairs, n_pairs as u64);
        Ok(())
    });
}

/// Flow-path merges are order-invariant too, and reassemble the global
/// pair order exactly.
#[test]
fn flow_merge_is_order_invariant() {
    check("flow_merge_is_order_invariant", |g| {
        let n_pairs = g.usize(0..50);
        let k = g.usize(1..6);
        let full = arb_flow_keepers(g, n_pairs);

        let mut shards = Vec::new();
        for spec in ShardSpec::all(k) {
            let r = spec.range(n_pairs);
            let combos = full
                .combos
                .iter()
                .map(|c| FlowCombo {
                    tag: c.tag.clone(),
                    paths: c.paths[r.clone()].to_vec(),
                })
                .collect();
            shards.push((
                header(spec, r.start as u64, r.end as u64, PayloadKind::FlowPaths),
                FlowPathsKeepers { combos },
            ));
        }
        let mut shuffled = shards.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.usize(0..i + 1));
        }
        let (run_a, merged_a) =
            merge_flow_shards(shards).map_err(|e| CaseError::fail(e.to_string()))?;
        let (_, merged_b) =
            merge_flow_shards(shuffled).map_err(|e| CaseError::fail(e.to_string()))?;
        check_assert_eq!(merged_a, merged_b);
        check_assert_eq!(merged_a, full);
        check_assert_eq!(run_a.n_pairs, n_pairs as u64);
        Ok(())
    });
}

/// Incompatible shard sets are refused: wrong config hash, wrong seed,
/// overlapping or gapped pair ranges, duplicate indices, wrong count.
#[test]
fn merge_rejects_incompatible_sets() {
    let total = 2usize;
    let n = 10usize;
    let stats: Vec<Vec<PairStats>> = MODES
        .iter()
        .map(|_| {
            (0..n)
                .map(|i| PairStats {
                    pair: CityPair {
                        src: i as u32,
                        dst: 99,
                    },
                    min_rtt_ms: Some(10.0 + i as f64),
                    max_rtt_ms: Some(20.0 + i as f64),
                    reachable: 1,
                    total,
                })
                .collect()
        })
        .collect();
    let shard_of = |spec: ShardSpec| {
        let r = spec.range(n);
        let slice: Vec<Vec<PairStats>> = stats.iter().map(|m| m[r.clone()].to_vec()).collect();
        (
            header(spec, r.start as u64, r.end as u64, PayloadKind::Latency),
            LatencyKeepers::from_stats(&slice, &MODES, total as u64),
        )
    };
    let specs = ShardSpec::all(2);
    let (a, b) = (shard_of(specs[0]), shard_of(specs[1]));

    assert!(merge_latency_shards(vec![a.clone(), b.clone()]).is_ok());
    assert!(merge_latency_shards(vec![]).is_err(), "empty set");
    assert!(
        merge_latency_shards(vec![a.clone()]).is_err(),
        "missing shard"
    );
    assert!(
        merge_latency_shards(vec![a.clone(), a.clone()]).is_err(),
        "duplicate shard"
    );
    let mut wrong_hash = b.clone();
    wrong_hash.0.config_hash ^= 1;
    assert!(
        merge_latency_shards(vec![a.clone(), wrong_hash]).is_err(),
        "foreign config hash"
    );
    let mut wrong_seed = b.clone();
    wrong_seed.0.seed ^= 1;
    assert!(
        merge_latency_shards(vec![a.clone(), wrong_seed]).is_err(),
        "foreign seed"
    );
    let mut gap = b.clone();
    gap.0.pair_lo += 1;
    gap.1.modes.iter_mut().for_each(|m| {
        m.min.remove(0);
        m.max.remove(0);
        m.reachable.remove(0);
    });
    assert!(
        merge_latency_shards(vec![a.clone(), gap]).is_err(),
        "gapped ranges"
    );
    let mut short = b.clone();
    short.1.modes.iter_mut().for_each(|m| {
        m.min.pop();
        m.max.pop();
        m.reachable.pop();
    });
    assert!(
        merge_latency_shards(vec![a, short]).is_err(),
        "payload shorter than its header range"
    );
}
