//! The shard file: a compact versioned binary container with a
//! checksummed provenance header.
//!
//! Layout (all integers little-endian):
//!
//! | bytes | field |
//! |---|---|
//! | 8 | magic `LEOSHARD` |
//! | 4 | format version (`FORMAT_VERSION`) |
//! | 8 | `config_hash` (FNV-1a of the study config's canonical kv string) |
//! | 8 | `seed` |
//! | 4 | `shard_index` |
//! | 4 | `shard_count` |
//! | 8 | `pair_lo` (global pair-index range, inclusive start) |
//! | 8 | `pair_hi` (exclusive end) |
//! | 1 | `payload_kind` ([`PayloadKind`]) |
//! | 8 | `payload_len` |
//! | 8 | FNV-1a 64 of the payload bytes |
//! | 8 | FNV-1a 64 of everything above |
//! | … | payload |
//!
//! Every read re-verifies both checksums, the magic, the version, and
//! the internal consistency of the header before a single payload byte
//! is interpreted, so a truncated or bit-flipped shard file fails with
//! a diagnostic instead of merging garbage into final outputs. Payload
//! encodings live in [`crate::keepers`]; this module only moves bytes.

use leo_util::telemetry::fnv1a_64;
use std::fmt;
use std::path::Path;

/// On-disk format version; bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// File magic, first 8 bytes of every shard file.
pub const MAGIC: &[u8; 8] = b"LEOSHARD";

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4 + 4 + 8 + 8 + 1 + 8 + 8 + 8;

/// What the payload encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Per-pair latency keepers ([`crate::keepers::LatencyKeepers`]).
    Latency,
    /// Per-pair routed path sets ([`crate::keepers::FlowPathsKeepers`]).
    FlowPaths,
}

impl PayloadKind {
    fn to_u8(self) -> u8 {
        match self {
            PayloadKind::Latency => 1,
            PayloadKind::FlowPaths => 2,
        }
    }

    fn from_u8(v: u8) -> Result<PayloadKind, ShardError> {
        match v {
            1 => Ok(PayloadKind::Latency),
            2 => Ok(PayloadKind::FlowPaths),
            _ => Err(ShardError::Corrupt(format!("unknown payload kind {v}"))),
        }
    }
}

/// Everything a merge needs to prove shard compatibility before
/// touching payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// FNV-1a 64 of the producing study config's canonical kv string —
    /// shards of one run must agree bit for bit.
    pub config_hash: u64,
    /// The study RNG seed (provenance; the partition itself is
    /// unseeded).
    pub seed: u64,
    /// Which shard this is.
    pub shard_index: u32,
    /// Out of how many.
    pub shard_count: u32,
    /// Global pair-index range start (inclusive).
    pub pair_lo: u64,
    /// Global pair-index range end (exclusive).
    pub pair_hi: u64,
    /// Payload encoding.
    pub kind: PayloadKind,
}

/// Why a shard file could not be written, read, or merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Filesystem-level failure.
    Io(String),
    /// The bytes are not a valid shard file (bad magic/version/checksum
    /// or an internally inconsistent payload).
    Corrupt(String),
    /// Individually valid shards that don't belong to the same run.
    Incompatible(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(m) => write!(f, "shard io: {m}"),
            ShardError::Corrupt(m) => write!(f, "shard corrupt: {m}"),
            ShardError::Incompatible(m) => write!(f, "shard incompatible: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Little-endian byte sink for payload encoders.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty sink.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i128`, little-endian (the `FixedSum` accumulator).
    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern — bit-exact, NaNs
    /// and infinities included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader for payload decoders: every read
/// can fail, so corrupt payloads surface as [`ShardError::Corrupt`]
/// instead of panics.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ShardError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            // lint: allow(hot-path-alloc) corrupt-file error path, taken at most once per decode; the sweep_fold edge is a bare-call name collision on `take`
            None => Err(ShardError::Corrupt(format!(
                "truncated payload: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, ShardError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ShardError> {
        // lint: allow(unwrap-in-lib) take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ShardError> {
        // lint: allow(unwrap-in-lib) take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next little-endian `i128`.
    pub fn i128(&mut self) -> Result<i128, ShardError> {
        // lint: allow(unwrap-in-lib) take(16) returned exactly 16 bytes
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Next `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, ShardError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ShardError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ShardError::Corrupt("string field is not UTF-8".into()))
    }

    /// True when every byte has been consumed — decoders check this so
    /// trailing garbage is rejected, not ignored.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Assemble a complete shard file image (header + checksums + payload).
pub fn encode_shard(header: &ShardHeader, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(header.config_hash);
    w.u64(header.seed);
    w.u32(header.shard_index);
    w.u32(header.shard_count);
    w.u64(header.pair_lo);
    w.u64(header.pair_hi);
    w.u8(header.kind.to_u8());
    w.u64(payload.len() as u64);
    w.u64(fnv1a_64(payload));
    let header_fnv = fnv1a_64(&w.buf);
    w.u64(header_fnv);
    debug_assert_eq!(w.buf.len(), HEADER_LEN);
    w.buf.extend_from_slice(payload);
    w.into_bytes()
}

/// Parse and fully verify a shard file image; returns the header and
/// the (checksum-verified) payload slice.
pub fn decode_shard(bytes: &[u8]) -> Result<(ShardHeader, &[u8]), ShardError> {
    if bytes.len() < HEADER_LEN {
        return Err(ShardError::Corrupt(format!(
            "file is {} bytes, header alone is {HEADER_LEN}",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(&bytes[..HEADER_LEN]);
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(ShardError::Corrupt("bad magic (not a shard file)".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(ShardError::Corrupt(format!(
            "format version {version}, this build reads {FORMAT_VERSION}"
        )));
    }
    let config_hash = r.u64()?;
    let seed = r.u64()?;
    let shard_index = r.u32()?;
    let shard_count = r.u32()?;
    let pair_lo = r.u64()?;
    let pair_hi = r.u64()?;
    let kind = PayloadKind::from_u8(r.u8()?)?;
    let payload_len = r.u64()?;
    let payload_fnv = r.u64()?;
    let header_fnv = r.u64()?;
    let computed = fnv1a_64(&bytes[..HEADER_LEN - 8]);
    if header_fnv != computed {
        return Err(ShardError::Corrupt(format!(
            "header checksum {header_fnv:#018x} != computed {computed:#018x}"
        )));
    }
    if shard_count == 0 || shard_index >= shard_count {
        return Err(ShardError::Corrupt(format!(
            "shard index {shard_index} out of range 0..{shard_count}"
        )));
    }
    if pair_lo > pair_hi {
        return Err(ShardError::Corrupt(format!(
            "pair range {pair_lo}..{pair_hi} is inverted"
        )));
    }
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(ShardError::Corrupt(format!(
            "payload is {} bytes, header says {payload_len}",
            payload.len()
        )));
    }
    let computed = fnv1a_64(payload);
    if payload_fnv != computed {
        return Err(ShardError::Corrupt(format!(
            "payload checksum {payload_fnv:#018x} != computed {computed:#018x}"
        )));
    }
    Ok((
        ShardHeader {
            config_hash,
            seed,
            shard_index,
            shard_count,
            pair_lo,
            pair_hi,
            kind,
        },
        payload,
    ))
}

/// Write a shard file, returning the bytes spilled (also added to the
/// `shard_spill_bytes` counter).
pub fn write_shard(path: &Path, header: &ShardHeader, payload: &[u8]) -> Result<u64, ShardError> {
    let bytes = encode_shard(header, payload);
    std::fs::write(path, &bytes)
        .map_err(|e| ShardError::Io(format!("write {}: {e}", path.display())))?;
    crate::SHARD_SPILL_BYTES.add(bytes.len() as u64);
    Ok(bytes.len() as u64)
}

/// Read and verify a shard file.
pub fn read_shard(path: &Path) -> Result<(ShardHeader, Vec<u8>), ShardError> {
    let bytes =
        std::fs::read(path).map_err(|e| ShardError::Io(format!("read {}: {e}", path.display())))?;
    let (header, payload) = decode_shard(&bytes)?;
    Ok((header, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ShardHeader {
        ShardHeader {
            config_hash: 0xfeed_beef_dead_cafe,
            seed: 42,
            shard_index: 1,
            shard_count: 4,
            pair_lo: 250,
            pair_hi: 500,
            kind: PayloadKind::Latency,
        }
    }

    #[test]
    fn roundtrip_preserves_header_and_payload() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let bytes = encode_shard(&header(), &payload);
        let (h, p) = decode_shard(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn every_single_byte_flip_in_header_is_rejected() {
        let bytes = encode_shard(&header(), b"payload bytes");
        for i in 0..HEADER_LEN {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_shard(&bad).is_err(), "flip at header byte {i}");
        }
    }

    #[test]
    fn payload_flips_and_truncations_are_rejected() {
        let bytes = encode_shard(&header(), b"payload bytes");
        for i in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_shard(&bad).is_err(), "flip at payload byte {i}");
        }
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            assert!(decode_shard(&bytes[..cut]).is_err(), "truncated to {cut}");
        }
    }

    #[test]
    fn reader_rejects_overruns_and_bad_utf8() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        let mut w = ByteWriter::new();
        w.u32(2);
        w.u8(0xff);
        w.u8(0xfe);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());
    }
}
