//! Deterministic pair-dimension partitioning.
//!
//! A sharded run splits the sampled traffic matrix — already a seeded,
//! deterministic sequence (see `sample_city_pairs`) — into `K`
//! contiguous index ranges. Contiguity is what makes merges trivial and
//! exact: shard `i` holds exactly the pairs a single-process run indexes
//! as `range.start..range.end`, in the same order, so concatenating
//! shard payloads by `pair_lo` reassembles the global pair order without
//! any reordering or tie-breaking.
//!
//! The split is **balanced** (`n = qK + r` gives the first `r` shards
//! `q + 1` pairs and the rest `q`) and a pure function of `(n, i, K)` —
//! stable across machines, thread counts, and processes. The seed never
//! enters the partition function; it rides in the shard-file header so
//! a merge can prove every shard came from the same sampled matrix.

use std::fmt;
use std::ops::Range;

/// One shard's coordinate: `index` of `count` (`0 ≤ index < count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Which shard this is, `0..count`.
    pub index: usize,
    /// Total number of shards in the run.
    pub count: usize,
}

impl ShardSpec {
    /// A validated spec; `Err` on a zero count or an out-of-range index.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be ≥ 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parse the CLI protocol form `i/K` (e.g. `0/4`, `3/4`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, k) = s
            .split_once('/')
            .ok_or_else(|| format!("malformed shard spec `{s}` (expected i/K)"))?;
        let index = i
            .parse::<usize>()
            .map_err(|_| format!("malformed shard index `{i}`"))?;
        let count = k
            .parse::<usize>()
            .map_err(|_| format!("malformed shard count `{k}`"))?;
        ShardSpec::new(index, count)
    }

    /// This shard's contiguous global pair-index range out of `n_pairs`.
    ///
    /// Balanced: sizes differ by at most one, larger shards first.
    /// Ranges tile `0..n_pairs` exactly — `∀i: range(i).end ==
    /// range(i+1).start` — which the merge re-verifies from the headers.
    pub fn range(&self, n_pairs: usize) -> Range<usize> {
        let base = n_pairs / self.count;
        let rem = n_pairs % self.count;
        let lo = self.index * base + self.index.min(rem);
        let len = base + usize::from(self.index < rem);
        lo..lo + len
    }

    /// All `count` specs in index order.
    pub fn all(count: usize) -> Vec<ShardSpec> {
        // lint: allow(hot-path-alloc) one K-element Vec per sharded run at setup; the sweep edge is a bare-call name collision on `all`
        (0..count).map(|index| ShardSpec { index, count }).collect()
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_and_balance() {
        for n in [0usize, 1, 7, 100, 1001] {
            for k in [1usize, 2, 3, 4, 7, 16] {
                let mut next = 0usize;
                let mut sizes = Vec::new();
                for spec in ShardSpec::all(k) {
                    let r = spec.range(n);
                    assert_eq!(r.start, next, "n={n} k={k} {spec}");
                    next = r.end;
                    sizes.push(r.len());
                }
                assert_eq!(next, n, "ranges must tile 0..{n}");
                let (lo, hi) = (
                    sizes.iter().min().copied().unwrap_or(0),
                    sizes.iter().max().copied().unwrap_or(0),
                );
                assert!(hi - lo <= 1, "unbalanced sizes {sizes:?}");
                assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "larger first");
            }
        }
    }

    #[test]
    fn parse_roundtrip_and_rejections() {
        let s = ShardSpec::parse("2/4").unwrap();
        assert_eq!(s, ShardSpec { index: 2, count: 4 });
        assert_eq!(s.to_string(), "2/4");
        assert_eq!(ShardSpec::parse(&s.to_string()).unwrap(), s);
        for bad in ["", "3", "4/4", "5/4", "a/4", "1/b", "1/0", "-1/4"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
