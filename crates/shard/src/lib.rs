//! # leo-shard — out-of-core pair-sharded execution
//!
//! The snapshot studies are embarrassingly parallel in the *pair*
//! dimension: latency folds are per-pair independent, and fig4's
//! routing depends only on the snapshot graph (the global max-min solve
//! happens after routing). This crate exploits that to run studies
//! whose per-pair state would not fit one process:
//!
//! 1. **Partition** ([`partition`]): the sampled traffic matrix is
//!    split into `K` balanced contiguous index ranges — a pure function
//!    of `(n_pairs, i, K)`, stable across machines and thread counts.
//! 2. **Execute** ([`runner`]): each shard builds the *same*
//!    deterministic [`StudyContext`] and then restricts it to its pair
//!    range ([`StudyContext::restrict_pair_range`]), so per-shard
//!    memory for pair-dimension state is `O(n/K)`. Shards run as
//!    in-process workers (via [`leo_core::par`]) or as separate OS
//!    processes speaking the `--shard i/K` CLI protocol.
//! 3. **Spill** ([`codec`], [`keepers`]): each worker writes its
//!    keepers — per-pair min/max RTT, reachability counts, a
//!    [`QuantileSketch`] + [`FixedSum`] over min RTTs, or routed path
//!    sets — to a compact versioned binary file whose checksummed
//!    header carries `(config_hash, seed, shard range)` provenance.
//! 4. **Merge** ([`keepers::merge_latency_shards`],
//!    [`keepers::merge_flow_shards`]): shard payloads concatenate in
//!    global pair order and keeper aggregates merge with the exact
//!    associative merges `leo_util::sketch` guarantees, so the final
//!    output is **bit-identical** to a single-process run and invariant
//!    to shard arrival order.
//!
//! Telemetry: spills bump [`static@SHARD_SPILL_BYTES`], merges bump
//! [`static@SHARD_MERGE_NS`]; both ride the standard counter snapshot
//! into run manifests, and sharded workers emit ordinary `RUN_*.jsonl`
//! logs that `validate_run` accepts.
//!
//! [`StudyContext`]: leo_core::StudyContext
//! [`StudyContext::restrict_pair_range`]: leo_core::StudyContext::restrict_pair_range
//! [`QuantileSketch`]: leo_util::sketch::QuantileSketch
//! [`FixedSum`]: leo_util::sketch::FixedSum

pub mod codec;
pub mod keepers;
pub mod partition;
pub mod runner;

pub use codec::{PayloadKind, ShardError, ShardHeader};
pub use keepers::{FlowPathsKeepers, LatencyKeepers, MergedRun};
pub use partition::ShardSpec;

use leo_util::telemetry::Counter;

/// Total bytes written to shard spill files.
pub static SHARD_SPILL_BYTES: Counter = Counter::new("shard_spill_bytes");
/// Nanoseconds spent validating + merging shard payloads.
pub static SHARD_MERGE_NS: Counter = Counter::new("shard_merge_ns");
