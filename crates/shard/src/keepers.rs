//! Shard payloads: the per-pair keepers a worker spills and the exact
//! associative merges that reassemble full-run results.
//!
//! Two payload kinds exist, mirroring the two sharded drivers:
//!
//! * [`LatencyKeepers`] — fig2's per-pair `{min RTT, max RTT, reachable}`
//!   fold plus whole-shard keeper aggregates (a [`QuantileSketch`] and a
//!   [`FixedSum`] over the reachable pairs' min RTTs). Merging
//!   concatenates the disjoint pair ranges and merges the sketches with
//!   the exact associative merges `leo_util::sketch` guarantees, so the
//!   merged result is bit-identical to a single-process run.
//! * [`FlowPathsKeepers`] — fig4's routed per-pair path sets (snapshot
//!   edge ids). Routing is per-pair independent; the *solve* is global,
//!   so shards spill paths and the merge concatenates them in global
//!   pair order before one max-min solve.
//!
//! Every decode is total: malformed bytes produce
//! [`ShardError::Corrupt`], never a panic, and cross-field invariants
//! (array lengths, sketch-vs-array consistency, header pair ranges) are
//! re-verified so a corrupted payload that slips past the checksum still
//! cannot mis-merge silently.

use crate::codec::{ByteReader, ByteWriter, PayloadKind, ShardError, ShardHeader};
use leo_core::experiments::latency::PairStats;
use leo_core::Mode;
use leo_data::traffic::CityPair;
use leo_graph::EdgeId;
use leo_util::sketch::{FixedSum, QuantileSketch};

fn mode_tag(m: Mode) -> u8 {
    match m {
        Mode::BpOnly => 0,
        Mode::Hybrid => 1,
        Mode::IslOnly => 2,
    }
}

fn mode_from_tag(t: u8) -> Result<Mode, ShardError> {
    match t {
        0 => Ok(Mode::BpOnly),
        1 => Ok(Mode::Hybrid),
        2 => Ok(Mode::IslOnly),
        _ => Err(ShardError::Corrupt(format!("unknown mode tag {t}"))),
    }
}

/// Bit-level f64 slice equality (distinguishes `0.0`/`-0.0`, treats
/// equal-bits NaN as equal) — the right notion for "same spilled bytes".
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Canonical sketch equality over the serialized fields. The sketch's
/// bucket vector is lazily allocated, so a derived comparison would
/// distinguish "never recorded" from "all-zero buckets"; comparing the
/// accessor views doesn't.
fn sketch_eq(a: &QuantileSketch, b: &QuantileSketch) -> bool {
    a.count() == b.count()
        && a.low_count() == b.low_count()
        && a.sum_fixed() == b.sum_fixed()
        && a.min().to_bits() == b.min().to_bits()
        && a.max().to_bits() == b.max().to_bits()
        && a.nonzero_buckets() == b.nonzero_buckets()
}

/// One mode's per-pair latency keepers over this shard's pair range.
#[derive(Debug, Clone)]
pub struct ModeLatencyKeepers {
    /// Connectivity mode these keepers were folded under.
    pub mode: Mode,
    /// Per-pair min RTT (ms) across snapshots; `INFINITY` = never
    /// reachable (matching the streaming fold's accumulator).
    pub min: Vec<f64>,
    /// Per-pair max RTT (ms); `NEG_INFINITY` = never reachable.
    pub max: Vec<f64>,
    /// Per-pair count of snapshots with a path.
    pub reachable: Vec<u32>,
    /// Keeper aggregate: sketch of the reachable pairs' min RTTs (the
    /// fig2a metric) — merges exactly across shards.
    pub min_rtt_sketch: QuantileSketch,
    /// Keeper aggregate: exact sum of the reachable pairs' min RTTs.
    pub min_rtt_sum: FixedSum,
}

impl PartialEq for ModeLatencyKeepers {
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && bits_eq(&self.min, &other.min)
            && bits_eq(&self.max, &other.max)
            && self.reachable == other.reachable
            && sketch_eq(&self.min_rtt_sketch, &other.min_rtt_sketch)
            && self.min_rtt_sum == other.min_rtt_sum
    }
}

/// The latency shard payload: per-mode keepers plus the snapshot count
/// every pair was evaluated over.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyKeepers {
    /// Snapshots evaluated (identical across shards of one run).
    pub total: u64,
    /// One entry per study mode, in study order.
    pub modes: Vec<ModeLatencyKeepers>,
}

impl LatencyKeepers {
    /// Fold per-mode [`PairStats`] (one inner `Vec` per mode, as
    /// returned by `latency_studies` on a range-restricted context)
    /// into spillable keepers. `total` is the snapshot count — passed
    /// explicitly so zero-pair shards still stamp it.
    pub fn from_stats(studies: &[Vec<PairStats>], modes: &[Mode], total: u64) -> LatencyKeepers {
        let modes = modes
            .iter()
            .zip(studies)
            .map(|(&mode, stats)| {
                let mut sketch = QuantileSketch::new();
                let mut sum = FixedSum::new();
                let mut keep = ModeLatencyKeepers {
                    mode,
                    min: Vec::with_capacity(stats.len()),
                    max: Vec::with_capacity(stats.len()),
                    reachable: Vec::with_capacity(stats.len()),
                    min_rtt_sketch: QuantileSketch::new(),
                    min_rtt_sum: FixedSum::new(),
                };
                for s in stats {
                    keep.min.push(s.min_rtt_ms.unwrap_or(f64::INFINITY));
                    keep.max.push(s.max_rtt_ms.unwrap_or(f64::NEG_INFINITY));
                    keep.reachable.push(s.reachable as u32);
                    if let Some(m) = s.min_rtt_ms {
                        sketch.record(m);
                        sum.add(m);
                    }
                }
                keep.min_rtt_sketch = sketch;
                keep.min_rtt_sum = sum;
                keep
            })
            .collect();
        LatencyKeepers { total, modes }
    }

    /// Rebuild per-mode [`PairStats`] for `pairs` (the city pairs this
    /// payload's range covers, in the same order). Exact inverse of
    /// [`LatencyKeepers::from_stats`] given matching pairs.
    pub fn to_stats(&self, pairs: &[CityPair]) -> Result<Vec<Vec<PairStats>>, ShardError> {
        self.modes
            .iter()
            .map(|m| {
                if m.min.len() != pairs.len() {
                    return Err(ShardError::Incompatible(format!(
                        "payload covers {} pairs, caller supplied {}",
                        m.min.len(),
                        pairs.len()
                    )));
                }
                Ok(pairs
                    .iter()
                    .enumerate()
                    .map(|(i, &pair)| {
                        let reachable = m.reachable[i] as usize;
                        PairStats {
                            pair,
                            min_rtt_ms: (reachable > 0).then_some(m.min[i]),
                            max_rtt_ms: (reachable > 0).then_some(m.max[i]),
                            reachable,
                            total: self.total as usize,
                        }
                    })
                    .collect())
            })
            .collect()
    }

    /// Number of pairs this payload covers.
    pub fn num_pairs(&self) -> usize {
        self.modes.first().map_or(0, |m| m.min.len())
    }

    /// Encode as a shard payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.total);
        w.u32(self.modes.len() as u32);
        for m in &self.modes {
            w.u8(mode_tag(m.mode));
            w.u64(m.min.len() as u64);
            for &v in &m.min {
                w.f64(v);
            }
            for &v in &m.max {
                w.f64(v);
            }
            for &v in &m.reachable {
                w.u32(v);
            }
            let s = &m.min_rtt_sketch;
            w.u64(s.count());
            w.u64(s.low_count());
            w.i128(s.sum_fixed().raw());
            w.f64(s.min());
            w.f64(s.max());
            let buckets = s.nonzero_buckets();
            w.u32(buckets.len() as u32);
            for (k, c) in buckets {
                w.u32(k as u32);
                w.u64(c);
            }
            w.i128(m.min_rtt_sum.raw());
        }
        w.into_bytes()
    }

    /// Decode and cross-validate a shard payload. Beyond the structural
    /// checks, the keeper aggregates are re-derived from the per-pair
    /// arrays and must match exactly — a payload whose sketch disagrees
    /// with its own arrays is corrupt, checksum notwithstanding.
    pub fn decode(bytes: &[u8]) -> Result<LatencyKeepers, ShardError> {
        let mut r = ByteReader::new(bytes);
        let total = r.u64()?;
        let n_modes = r.u32()? as usize;
        if n_modes > 16 {
            return Err(ShardError::Corrupt(format!(
                "implausible mode count {n_modes}"
            )));
        }
        let mut modes = Vec::with_capacity(n_modes);
        let mut n_pairs: Option<usize> = None;
        for _ in 0..n_modes {
            let mode = mode_from_tag(r.u8()?)?;
            let n = r.u64()? as usize;
            if bytes.len() < n {
                // Cheap plausibility bound before allocating: each pair
                // needs ≥ 20 payload bytes, so n can never exceed len.
                return Err(ShardError::Corrupt(format!("implausible pair count {n}")));
            }
            match n_pairs {
                None => n_pairs = Some(n),
                Some(p) if p != n => {
                    return Err(ShardError::Corrupt(format!(
                        "mode pair counts disagree: {p} vs {n}"
                    )));
                }
                Some(_) => {}
            }
            let mut min = Vec::with_capacity(n);
            for _ in 0..n {
                min.push(r.f64()?);
            }
            let mut max = Vec::with_capacity(n);
            for _ in 0..n {
                max.push(r.f64()?);
            }
            let mut reachable = Vec::with_capacity(n);
            for _ in 0..n {
                reachable.push(r.u32()?);
            }
            let count = r.u64()?;
            let low = r.u64()?;
            let sum = FixedSum::from_raw(r.i128()?);
            let (smin, smax) = (r.f64()?, r.f64()?);
            let n_buckets = r.u32()? as usize;
            if n_buckets > 4096 {
                return Err(ShardError::Corrupt(format!(
                    "implausible bucket count {n_buckets}"
                )));
            }
            let mut buckets = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                buckets.push((r.u32()? as usize, r.u64()?));
            }
            let min_rtt_sketch =
                QuantileSketch::from_raw_parts(count, low, sum, smin, smax, &buckets)
                    .map_err(ShardError::Corrupt)?;
            let min_rtt_sum = FixedSum::from_raw(r.i128()?);

            // Cross-validation: re-derive the keeper aggregates.
            let mut expect_sketch = QuantileSketch::new();
            let mut expect_sum = FixedSum::new();
            for (i, &m) in min.iter().enumerate() {
                let reached = reachable[i] > 0;
                if reached != m.is_finite() || reached != max[i].is_finite() {
                    return Err(ShardError::Corrupt(format!(
                        "pair {i}: reachable={} but min={m} max={}",
                        reachable[i], max[i]
                    )));
                }
                if u64::from(reachable[i]) > total {
                    return Err(ShardError::Corrupt(format!(
                        "pair {i}: reachable {} of {total} snapshots",
                        reachable[i]
                    )));
                }
                if reached {
                    expect_sketch.record(m);
                    expect_sum.add(m);
                }
            }
            if !sketch_eq(&expect_sketch, &min_rtt_sketch) {
                return Err(ShardError::Corrupt(
                    "min-RTT sketch disagrees with per-pair arrays".into(),
                ));
            }
            if expect_sum != min_rtt_sum {
                return Err(ShardError::Corrupt(
                    "min-RTT FixedSum disagrees with per-pair arrays".into(),
                ));
            }
            modes.push(ModeLatencyKeepers {
                mode,
                min,
                max,
                reachable,
                min_rtt_sketch,
                min_rtt_sum,
            });
        }
        if !r.is_exhausted() {
            return Err(ShardError::Corrupt("trailing bytes after payload".into()));
        }
        Ok(LatencyKeepers { total, modes })
    }
}

/// One routed (mode, k) combination's per-pair path sets over this
/// shard's pair range: `paths[pair][path]` is a list of snapshot edge
/// ids, exactly what `throughput_from_path_edges` consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowCombo {
    /// Human-readable combo tag (e.g. `Hybrid/k4`); merge requires
    /// shards to agree on tags and their order.
    pub tag: String,
    /// Per-pair routed paths, each a list of snapshot edge ids.
    pub paths: Vec<Vec<Vec<EdgeId>>>,
}

/// The throughput shard payload: every routed combination over this
/// shard's pair range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPathsKeepers {
    /// One entry per routed (mode, k) combination, in driver order.
    pub combos: Vec<FlowCombo>,
}

impl FlowPathsKeepers {
    /// Number of pairs this payload covers.
    pub fn num_pairs(&self) -> usize {
        self.combos.first().map_or(0, |c| c.paths.len())
    }

    /// Encode as a shard payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(self.combos.len() as u32);
        for c in &self.combos {
            w.str(&c.tag);
            w.u64(c.paths.len() as u64);
            for pair in &c.paths {
                w.u32(pair.len() as u32);
                for path in pair {
                    w.u32(path.len() as u32);
                    for &e in path {
                        w.u32(e);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a shard payload (structural validation only — edge ids
    /// are snapshot-relative and validated when the merge loads them
    /// into the flow simulation).
    pub fn decode(bytes: &[u8]) -> Result<FlowPathsKeepers, ShardError> {
        let mut r = ByteReader::new(bytes);
        let n_combos = r.u32()? as usize;
        if n_combos > 256 {
            return Err(ShardError::Corrupt(format!(
                "implausible combo count {n_combos}"
            )));
        }
        let mut combos = Vec::with_capacity(n_combos);
        let mut n_pairs: Option<usize> = None;
        for _ in 0..n_combos {
            let tag = r.str()?;
            let n = r.u64()? as usize;
            if bytes.len() < n {
                return Err(ShardError::Corrupt(format!("implausible pair count {n}")));
            }
            match n_pairs {
                None => n_pairs = Some(n),
                Some(p) if p != n => {
                    return Err(ShardError::Corrupt(format!(
                        "combo pair counts disagree: {p} vs {n}"
                    )));
                }
                Some(_) => {}
            }
            let mut paths = Vec::with_capacity(n);
            for _ in 0..n {
                let n_paths = r.u32()? as usize;
                if n_paths > 1024 {
                    return Err(ShardError::Corrupt(format!(
                        "implausible path count {n_paths}"
                    )));
                }
                let mut pair = Vec::with_capacity(n_paths);
                for _ in 0..n_paths {
                    let n_edges = r.u32()? as usize;
                    if bytes.len() < n_edges.saturating_mul(4) {
                        return Err(ShardError::Corrupt(format!(
                            "implausible edge count {n_edges}"
                        )));
                    }
                    let mut path = Vec::with_capacity(n_edges);
                    for _ in 0..n_edges {
                        path.push(r.u32()?);
                    }
                    pair.push(path);
                }
                paths.push(pair);
            }
            combos.push(FlowCombo { tag, paths });
        }
        if !r.is_exhausted() {
            return Err(ShardError::Corrupt("trailing bytes after payload".into()));
        }
        Ok(FlowPathsKeepers { combos })
    }
}

/// Provenance of a completed merge, for manifests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedRun {
    /// The (shared) config hash of every merged shard.
    pub config_hash: u64,
    /// The (shared) study seed.
    pub seed: u64,
    /// How many shards were merged.
    pub shard_count: u32,
    /// Total pairs covered, `0..n_pairs` contiguously.
    pub n_pairs: u64,
}

/// Verify that `shards` are exactly the `K` shards of one run: same
/// config hash, seed, declared count and payload kind; indices a
/// permutation of `0..K`; pair ranges tiling `0..n` contiguously after
/// sorting; per-shard payload sizes matching their header ranges.
/// Returns the shards sorted by `pair_lo` plus the run provenance.
fn validate_shard_set<T>(
    mut shards: Vec<(ShardHeader, T)>,
    kind: PayloadKind,
    payload_pairs: impl Fn(&T) -> usize,
) -> Result<(MergedRun, Vec<(ShardHeader, T)>), ShardError> {
    let Some(first) = shards.first() else {
        return Err(ShardError::Incompatible("no shards to merge".into()));
    };
    let (h0, _) = first;
    let run = MergedRun {
        config_hash: h0.config_hash,
        seed: h0.seed,
        shard_count: h0.shard_count,
        n_pairs: 0,
    };
    if shards.len() != run.shard_count as usize {
        return Err(ShardError::Incompatible(format!(
            "{} shard files for a {}-shard run",
            shards.len(),
            run.shard_count
        )));
    }
    for (h, payload) in &shards {
        if h.kind != kind {
            return Err(ShardError::Incompatible(format!(
                "payload kind {:?}, expected {kind:?}",
                h.kind
            )));
        }
        if h.config_hash != run.config_hash {
            return Err(ShardError::Incompatible(format!(
                "config hash {:#018x} != {:#018x} — shards from different runs",
                h.config_hash, run.config_hash
            )));
        }
        if h.seed != run.seed {
            return Err(ShardError::Incompatible(format!(
                "seed {} != {} — shards from different runs",
                h.seed, run.seed
            )));
        }
        if h.shard_count != run.shard_count {
            return Err(ShardError::Incompatible(format!(
                "shard count {} != {}",
                h.shard_count, run.shard_count
            )));
        }
        let declared = (h.pair_hi - h.pair_lo) as usize;
        if payload_pairs(payload) != declared {
            return Err(ShardError::Corrupt(format!(
                "shard {} payload covers {} pairs, header says {declared}",
                h.shard_index,
                payload_pairs(payload)
            )));
        }
    }
    shards.sort_by_key(|(h, _)| (h.pair_lo, h.shard_index));
    let mut next = 0u64;
    let mut seen = vec![false; shards.len()];
    for (h, _) in &shards {
        if h.pair_lo != next {
            return Err(ShardError::Incompatible(format!(
                "pair ranges not contiguous: expected shard starting at {next}, got {}..{}",
                h.pair_lo, h.pair_hi
            )));
        }
        next = h.pair_hi;
        let idx = h.shard_index as usize;
        if seen[idx] {
            return Err(ShardError::Incompatible(format!(
                "duplicate shard index {idx}"
            )));
        }
        seen[idx] = true;
    }
    Ok((
        MergedRun {
            n_pairs: next,
            ..run
        },
        shards,
    ))
}

/// Merge latency shards into the full run's keepers. Order-invariant:
/// shards may arrive in any permutation (they are re-sorted by
/// `pair_lo`); per-pair arrays concatenate in global pair order and the
/// keeper aggregates merge with the exact associative sketch merges, so
/// the result is bit-identical to a single-process run — and identical
/// across merge orders.
pub fn merge_latency_shards(
    shards: Vec<(ShardHeader, LatencyKeepers)>,
) -> Result<(MergedRun, LatencyKeepers), ShardError> {
    let t0 = leo_util::telemetry::now_ns();
    let (run, shards) =
        validate_shard_set(shards, PayloadKind::Latency, LatencyKeepers::num_pairs)?;
    let total = shards[0].1.total;
    let mode_seq: Vec<Mode> = shards[0].1.modes.iter().map(|m| m.mode).collect();
    for (h, k) in &shards {
        if k.total != total {
            return Err(ShardError::Incompatible(format!(
                "shard {} folded {} snapshots, expected {total}",
                h.shard_index, k.total
            )));
        }
        let seq: Vec<Mode> = k.modes.iter().map(|m| m.mode).collect();
        if seq != mode_seq {
            return Err(ShardError::Incompatible(format!(
                "shard {} modes {seq:?}, expected {mode_seq:?}",
                h.shard_index
            )));
        }
    }
    let mut merged = LatencyKeepers {
        total,
        modes: mode_seq
            .iter()
            .map(|&mode| ModeLatencyKeepers {
                mode,
                min: Vec::with_capacity(run.n_pairs as usize),
                max: Vec::with_capacity(run.n_pairs as usize),
                reachable: Vec::with_capacity(run.n_pairs as usize),
                min_rtt_sketch: QuantileSketch::new(),
                min_rtt_sum: FixedSum::new(),
            })
            .collect(),
    };
    for (_, k) in &shards {
        for (out, m) in merged.modes.iter_mut().zip(&k.modes) {
            out.min.extend_from_slice(&m.min);
            out.max.extend_from_slice(&m.max);
            out.reachable.extend_from_slice(&m.reachable);
            out.min_rtt_sketch.merge(&m.min_rtt_sketch);
            out.min_rtt_sum.merge(&m.min_rtt_sum);
        }
    }
    crate::SHARD_MERGE_NS.add(leo_util::telemetry::now_ns() - t0);
    Ok((run, merged))
}

/// Merge throughput shards into the full run's per-pair path sets, in
/// global pair order. Order-invariant like [`merge_latency_shards`];
/// combo tags must agree across shards in the same order.
pub fn merge_flow_shards(
    shards: Vec<(ShardHeader, FlowPathsKeepers)>,
) -> Result<(MergedRun, FlowPathsKeepers), ShardError> {
    let t0 = leo_util::telemetry::now_ns();
    let (run, shards) =
        validate_shard_set(shards, PayloadKind::FlowPaths, FlowPathsKeepers::num_pairs)?;
    let tags: Vec<&str> = shards[0].1.combos.iter().map(|c| c.tag.as_str()).collect();
    for (h, k) in &shards {
        let seq: Vec<&str> = k.combos.iter().map(|c| c.tag.as_str()).collect();
        if seq != tags {
            return Err(ShardError::Incompatible(format!(
                "shard {} combos {seq:?}, expected {tags:?}",
                h.shard_index
            )));
        }
    }
    let mut merged = FlowPathsKeepers {
        combos: tags
            .iter()
            .map(|t| FlowCombo {
                tag: t.to_string(),
                paths: Vec::with_capacity(run.n_pairs as usize),
            })
            .collect(),
    };
    for (_, k) in shards {
        for (out, c) in merged.combos.iter_mut().zip(k.combos) {
            out.paths.extend(c.paths);
        }
    }
    crate::SHARD_MERGE_NS.add(leo_util::telemetry::now_ns() - t0);
    Ok((run, merged))
}
