//! Shard execution: build a range-restricted [`StudyContext`], run the
//! study fold on it, spill keepers, and merge shard files back into a
//! full run.
//!
//! Determinism contract: every shard builds the **same** context —
//! constellation, ground segment, and the seeded pair sample are pure
//! functions of the [`StudyConfig`] — and then restricts itself to its
//! partition range. Snapshot graphs are pair-independent, latency folds
//! are per-pair independent, and fig4's routing reads only the snapshot
//! graph, so a shard's results are exactly the corresponding slice of a
//! single-process run's results. The merge concatenates those slices in
//! global pair order, which is why `K`-sharded output is bit-identical
//! to `K = 1`.
//!
//! Two execution styles share this module:
//!
//! * **In-process** ([`run_latency_sharded`], [`run_flow_sharded`]):
//!   workers fan out on [`leo_core::par::parallel_map`], each folding
//!   its shard single-threaded, spilling, then merging — used by the
//!   drivers' `--shards K` mode and the equivalence tests.
//! * **Out-of-core** ([`spill_latency_shard`], [`spill_flow_shard`] +
//!   [`merge_latency_files`], [`merge_flow_files`]): each worker is its
//!   own OS process (`--shard i/K --shard-dir D`), holding only
//!   `O(pairs/K)` pair state; a coordinator merges the spill files.

use crate::codec::{read_shard, write_shard, PayloadKind, ShardError, ShardHeader};
use crate::keepers::{
    merge_flow_shards, merge_latency_shards, FlowCombo, FlowPathsKeepers, LatencyKeepers, MergedRun,
};
use crate::partition::ShardSpec;
use leo_core::experiments::latency::latency_studies;
use leo_core::experiments::throughput::route_pair_paths;
use leo_core::par::parallel_map;
use leo_core::{Mode, StudyConfig, StudyContext};
use leo_util::telemetry::{fnv1a_64, Heartbeat};
use std::path::{Path, PathBuf};

/// The run-identity hash stamped into shard headers: FNV-1a 64 of the
/// config's canonical kv string — the same hash run manifests carry, so
/// shard files, manifests, and reports all name a run identically.
pub fn config_hash(cfg: &StudyConfig) -> u64 {
    fnv1a_64(cfg.to_kv_string().as_bytes())
}

/// Canonical spill-file name for one shard of a labelled run.
pub fn shard_file_name(label: &str, spec: ShardSpec) -> String {
    format!("SHARD_{label}.s{}of{}.bin", spec.index, spec.count)
}

/// Canonical tag for a routed (mode, k) combination — merge identity
/// for fig4 shards.
pub fn combo_tag(mode: Mode, k: usize) -> String {
    format!("{mode:?}/k{k}")
}

/// Build the shared context and restrict it to `spec`'s pair range.
/// Returns the restricted context and the global range it covers.
fn restricted_context(
    cfg: &StudyConfig,
    spec: ShardSpec,
) -> (StudyContext, std::ops::Range<usize>) {
    let mut ctx = StudyContext::build(cfg.clone());
    let range = spec.range(ctx.pairs.len());
    ctx.restrict_pair_range(range.start, range.end);
    (ctx, range)
}

fn header_for(
    cfg: &StudyConfig,
    spec: ShardSpec,
    range: &std::ops::Range<usize>,
    kind: PayloadKind,
) -> ShardHeader {
    ShardHeader {
        config_hash: config_hash(cfg),
        seed: cfg.seed,
        shard_index: spec.index as u32,
        shard_count: spec.count as u32,
        pair_lo: range.start as u64,
        pair_hi: range.end as u64,
        kind,
    }
}

/// Run one latency shard: fold `modes` over the configured snapshots
/// for this shard's pairs only. `threads` is the *intra-shard* worker
/// count (workers fanning out across shards pass 1).
pub fn latency_shard(
    cfg: &StudyConfig,
    modes: &[Mode],
    spec: ShardSpec,
    threads: usize,
) -> (ShardHeader, LatencyKeepers) {
    let (ctx, range) = restricted_context(cfg, spec);
    let studies = latency_studies(&ctx, modes, threads);
    let total = cfg.snapshot_times_s.len() as u64;
    let keepers = LatencyKeepers::from_stats(&studies, modes, total);
    (header_for(cfg, spec, &range, PayloadKind::Latency), keepers)
}

/// Run one throughput-routing shard: route every `(mode, k)` combo at
/// `t_s` for this shard's pairs and keep the per-pair path edge sets.
/// The global max-min solve happens after the merge, on the full
/// concatenated path list.
pub fn flow_shard(
    cfg: &StudyConfig,
    t_s: f64,
    combos: &[(Mode, usize)],
    spec: ShardSpec,
) -> (ShardHeader, FlowPathsKeepers) {
    let (ctx, range) = restricted_context(cfg, spec);
    let mut modes: Vec<Mode> = Vec::new();
    for &(m, _) in combos {
        if !modes.contains(&m) {
            modes.push(m);
        }
    }
    let snaps = ctx.snapshot_bundle(t_s, &modes);
    let combos = combos
        .iter()
        .map(|&(mode, k)| {
            let mi = modes
                .iter()
                .position(|&m| m == mode)
                // lint: allow(unwrap-in-lib) modes was built from combos, so every combo's mode is present
                .expect("mode present");
            let paths = route_pair_paths(&ctx, &snaps[mi], k)
                .into_iter()
                .map(|pair| pair.into_iter().map(|p| p.edges).collect())
                .collect();
            FlowCombo {
                tag: combo_tag(mode, k),
                paths,
            }
        })
        .collect();
    (
        header_for(cfg, spec, &range, PayloadKind::FlowPaths),
        FlowPathsKeepers { combos },
    )
}

/// Run one latency shard and spill it to `dir`; returns the file path.
pub fn spill_latency_shard(
    cfg: &StudyConfig,
    modes: &[Mode],
    spec: ShardSpec,
    threads: usize,
    dir: &Path,
    label: &str,
) -> Result<PathBuf, ShardError> {
    let (header, keepers) = latency_shard(cfg, modes, spec, threads);
    let path = dir.join(shard_file_name(label, spec));
    write_shard(&path, &header, &keepers.encode())?;
    Ok(path)
}

/// Run one throughput-routing shard and spill it to `dir`.
pub fn spill_flow_shard(
    cfg: &StudyConfig,
    t_s: f64,
    combos: &[(Mode, usize)],
    spec: ShardSpec,
    dir: &Path,
    label: &str,
) -> Result<PathBuf, ShardError> {
    let (header, keepers) = flow_shard(cfg, t_s, combos, spec);
    let path = dir.join(shard_file_name(label, spec));
    write_shard(&path, &header, &keepers.encode())?;
    Ok(path)
}

/// Read, decode, and merge latency shard files (any order).
pub fn merge_latency_files(paths: &[PathBuf]) -> Result<(MergedRun, LatencyKeepers), ShardError> {
    let mut shards = Vec::with_capacity(paths.len());
    for p in paths {
        let (header, payload) = read_shard(p)?;
        shards.push((header, LatencyKeepers::decode(&payload)?));
    }
    merge_latency_shards(shards)
}

/// Read, decode, and merge throughput shard files (any order).
pub fn merge_flow_files(paths: &[PathBuf]) -> Result<(MergedRun, FlowPathsKeepers), ShardError> {
    let mut shards = Vec::with_capacity(paths.len());
    for p in paths {
        let (header, payload) = read_shard(p)?;
        shards.push((header, FlowPathsKeepers::decode(&payload)?));
    }
    merge_flow_shards(shards)
}

/// In-process sharded latency run: fan `count` single-threaded workers
/// out on [`parallel_map`], spill each shard to `dir`, then merge the
/// spill files. Returns the merged keepers plus the spill paths (left
/// on disk for inspection / the CI byte-identity lane).
///
/// Ticks a `shard_latency` [`Heartbeat`] per completed shard.
pub fn run_latency_sharded(
    cfg: &StudyConfig,
    modes: &[Mode],
    count: usize,
    dir: &Path,
    label: &str,
) -> Result<(MergedRun, LatencyKeepers, Vec<PathBuf>), ShardError> {
    let specs = ShardSpec::all(count);
    let hb = Heartbeat::new("shard_latency", count as u64);
    let spilled = parallel_map(&specs, count, |&spec| {
        let r = spill_latency_shard(cfg, modes, spec, 1, dir, label);
        hb.tick(1);
        r
    });
    let mut paths = Vec::with_capacity(count);
    for r in spilled {
        paths.push(r?);
    }
    let (run, keepers) = merge_latency_files(&paths)?;
    Ok((run, keepers, paths))
}

/// In-process sharded throughput routing: shards run sequentially —
/// [`route_pair_paths`] already parallelizes across pairs inside each
/// shard, so nesting a worker pool would only oversubscribe. Spills to
/// `dir` and merges like [`run_latency_sharded`].
pub fn run_flow_sharded(
    cfg: &StudyConfig,
    t_s: f64,
    combos: &[(Mode, usize)],
    count: usize,
    dir: &Path,
    label: &str,
) -> Result<(MergedRun, FlowPathsKeepers, Vec<PathBuf>), ShardError> {
    let hb = Heartbeat::new("shard_flow", count as u64);
    let mut paths = Vec::with_capacity(count);
    for spec in ShardSpec::all(count) {
        paths.push(spill_flow_shard(cfg, t_s, combos, spec, dir, label)?);
        hb.tick(1);
    }
    let (run, keepers) = merge_flow_files(&paths)?;
    Ok((run, keepers, paths))
}
