//! Shard-pipeline overhead benchmarks: the evidence that out-of-core
//! execution (`leo-shard`) is close to free at the merge layer.
//!
//! Four measurements, tiny scale:
//!
//! * `latency_unsharded` — the baseline: one `latency_studies` fold over
//!   the full pair set, single-threaded.
//! * `latency_sharded_4` — the same study as 4 in-process pair shards:
//!   per-shard context builds + folds + spill files + merge. **This /
//!   `latency_unsharded` is the headline overhead ratio** gated by
//!   `scripts/ci.sh` (the sharded path re-builds the study context per
//!   shard, so the ratio bounds the whole out-of-core tax, not just the
//!   merge).
//! * `merge_4_shards` — `merge_latency_files` over 4 pre-spilled shard
//!   files alone: decode + validate + concatenate + sketch merges.
//! * `keepers_roundtrip` — encode + decode of one shard's keepers in
//!   memory (codec cost with no I/O).
//!
//! `cargo bench -p leo-bench --bench shard` writes `BENCH_shard.json`
//! (JSON lines) into `LEO_BENCH_DIR` or the cwd.

use leo_core::experiments::latency::latency_studies;
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_shard::codec::PayloadKind;
use leo_shard::runner::{config_hash, latency_shard, run_latency_sharded, spill_latency_shard};
use leo_shard::{LatencyKeepers, ShardSpec};
use leo_util::bench::Harness;

const MODES: [Mode; 2] = [Mode::BpOnly, Mode::Hybrid];
const SHARDS: usize = 4;

fn main() {
    let mut h = Harness::new("shard");
    let cfg = ExperimentScale::Tiny.config();
    let dir = std::env::temp_dir().join(format!("leo_bench_shard_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard bench scratch dir");

    // Baseline: the unsharded fold the figure bins run by default.
    let ctx = StudyContext::build(cfg.clone());
    h.bench("latency_unsharded", || latency_studies(&ctx, &MODES, 1));

    // Full sharded pipeline: partition, per-shard context + fold, spill,
    // merge. Byte-identity with the baseline is covered by tests and the
    // CI diff lane; this measures what that isolation costs.
    h.bench("latency_sharded_4", || {
        run_latency_sharded(&cfg, &MODES, SHARDS, &dir, "bench").expect("sharded run")
    });

    // Merge alone, over pre-spilled files.
    let files: Vec<_> = ShardSpec::all(SHARDS)
        .into_iter()
        .map(|spec| spill_latency_shard(&cfg, &MODES, spec, 1, &dir, "merge_only").expect("spill"))
        .collect();
    h.bench("merge_4_shards", || {
        leo_shard::runner::merge_latency_files(&files).expect("merge")
    });

    // Codec alone, in memory.
    let spec = ShardSpec::new(0, 1).expect("valid spec");
    let (header, keepers) = latency_shard(&cfg, &MODES, spec, 1);
    assert_eq!(header.config_hash, config_hash(&cfg));
    assert_eq!(header.kind, PayloadKind::Latency);
    h.bench("keepers_roundtrip", || {
        let bytes = keepers.encode();
        LatencyKeepers::decode(&bytes).expect("decode")
    });

    let _ = std::fs::remove_dir_all(&dir);
    h.finish().expect("write BENCH_shard.json");
}
