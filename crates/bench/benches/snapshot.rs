//! Snapshot-construction benchmarks: the evidence for the `TimeSweep`
//! engine.
//!
//! Both benches advance time by 15 s per iteration, so every measurement
//! is a *consecutive-instant* snapshot build — the regime every
//! time-series driver lives in:
//!
//! * `bundle_per_instant_rebuild` — the pre-sweep path: a fresh
//!   orbit propagation, visibility query, and graph assembly for each
//!   instant, with nothing carried over.
//! * `sweep_consecutive` — one warm `TimeSweep` stepped instant to
//!   instant: SoA satellite state advanced in place, cell residency
//!   updated by transition, and visibility recomputed only for ground
//!   terminals whose candidate cells changed membership.
//! * `sweep_cold_start` — `TimeSweep::new` + first `step`, the one-off
//!   cost a driver pays before the deltas start paying rent.
//!
//! **The first pair is the headline number**: `scripts/ci.sh` checks
//! rebuild/sweep median ≥ its smoke floor, and `BENCH_snapshot.json`
//! records the trajectory.
//!
//! `cargo bench -p leo-bench --bench snapshot` writes
//! `BENCH_snapshot.json` (JSON lines) into `LEO_BENCH_DIR` or the cwd.

use leo_bench::{finish_run, init_run};
use leo_core::{ExperimentScale, Mode, StudyContext, TimeSweep};
use leo_util::bench::Harness;

/// Fig2-style snapshot cadence.
const DT_S: f64 = 15.0;
const MODES: [Mode; 2] = [Mode::BpOnly, Mode::Hybrid];

fn edge_total(snaps: &[leo_core::NetworkSnapshot]) -> usize {
    snaps.iter().map(|s| s.graph.num_edges()).sum()
}

fn main() {
    init_run("snapshot");
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let mut h = Harness::new("snapshot");

    let c = &ctx;
    let mut t = 0.0;
    h.bench("bundle_per_instant_rebuild", move || {
        t += DT_S;
        edge_total(&c.snapshot_bundle(t, &MODES))
    });

    let mut sweep = TimeSweep::new(&ctx, &MODES);
    let mut t = 0.0;
    h.bench("sweep_consecutive", move || {
        t += DT_S;
        edge_total(sweep.step(t))
    });

    h.bench("sweep_cold_start", || {
        let mut sweep = TimeSweep::new(&ctx, &MODES);
        edge_total(sweep.step(0.0))
    });

    h.finish().expect("write BENCH_snapshot.json");
    finish_run("snapshot", &ExperimentScale::Tiny.config());
}
