//! Routing-workspace benchmarks: the evidence for the zero-alloc
//! `DijkstraWorkspace` + `snapshot_bundle` refactor.
//!
//! Three before/after pairs, each isolating one layer of the change:
//!
//! * `sssp_fresh_alloc` vs `sssp_workspace` — one single-source run with
//!   per-call allocation vs warm generation-stamped buffers.
//! * `snapshot_two_calls` vs `snapshot_bundle_2modes` — materializing
//!   BpOnly + Hybrid with two independent orbit/visibility passes vs one
//!   shared pass.
//! * `inner_loop_seed` vs `inner_loop_workspace` — the fig2 per-snapshot
//!   inner loop end to end (snapshots + per-source SSSP + per-pair RTT
//!   reads), seed-style vs workspace-style. **This pair is the headline
//!   number**: `scripts/ci.sh` checks seed/workspace median ≥ its
//!   threshold, and `BENCH_routing.json` records the trajectory.
//! * `inner_loop_sweep` — the same inner loop on a warm [`TimeSweep`]
//!   stepped 15 s per iteration, i.e. what `sweep_map`-based drivers now
//!   run per instant after the first.
//! * `maxflow_fresh` vs `maxflow_workspace` — one Dinic run with
//!   per-call scratch vs a warm [`MaxFlowWorkspace`] (both pay the same
//!   residual-network clone).
//! * `maxmin_fresh` vs `maxmin_workspace` — one fig4-style max-min-fair
//!   solve with per-call buffers vs a warm [`FlowWorkspace`].
//!
//! `cargo bench -p leo-bench --bench routing` writes `BENCH_routing.json`
//! (JSON lines) into `LEO_BENCH_DIR` or the cwd.

use std::collections::HashMap;

use leo_bench::{finish_run, init_run};
use leo_core::{ExperimentScale, Mode, StudyContext, TimeSweep};
use leo_flow::{FlowSim, FlowWorkspace};
use leo_graph::{
    dijkstra, k_edge_disjoint_paths, max_flow, max_flow_with, DijkstraWorkspace, FlowNetwork,
    MaxFlowWorkspace,
};
use leo_util::bench::Harness;

/// Seed-style grouping of pair indices by source city (what
/// `latency.rs` rebuilt per snapshot before the refactor).
fn group_by_src(ctx: &StudyContext) -> HashMap<u32, Vec<usize>> {
    let mut by_src: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, pair) in ctx.pairs.iter().enumerate() {
        by_src.entry(pair.src).or_default().push(i);
    }
    by_src
}

fn bench_sssp(h: &mut Harness, ctx: &StudyContext) {
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    let src = snap.city_node(0);
    h.bench("sssp_fresh_alloc", || dijkstra(&snap.graph, src));
    let mut ws = DijkstraWorkspace::new();
    h.bench("sssp_workspace", move || {
        let view = ws.run(&snap.graph, src, None, None);
        view.dist(snap.city_node(1))
    });
}

fn bench_snapshot(h: &mut Harness, ctx: &StudyContext) {
    h.bench("snapshot_two_calls", || {
        let bp = ctx.snapshot(900.0, Mode::BpOnly);
        let hy = ctx.snapshot(900.0, Mode::Hybrid);
        bp.graph.num_edges() + hy.graph.num_edges()
    });
    h.bench("snapshot_bundle_2modes", || {
        let snaps = ctx.snapshot_bundle(900.0, &[Mode::BpOnly, Mode::Hybrid]);
        snaps.iter().map(|s| s.graph.num_edges()).sum::<usize>()
    });
}

fn bench_inner_loop(h: &mut Harness, ctx: &StudyContext) {
    // Seed path: two independent snapshot builds, a per-snapshot HashMap
    // grouping, and a freshly-allocated Dijkstra per source city.
    h.bench("inner_loop_seed", || {
        let mut acc = 0.0f64;
        for mode in [Mode::BpOnly, Mode::Hybrid] {
            let snap = ctx.snapshot(1800.0, mode);
            let by_src = group_by_src(ctx);
            for (src, idxs) in &by_src {
                let sp = dijkstra(&snap.graph, snap.city_node(*src as usize));
                for &i in idxs {
                    let d = sp.dist[snap.city_node(ctx.pairs[i].dst as usize) as usize];
                    if d.is_finite() {
                        acc += d;
                    }
                }
            }
        }
        acc
    });
    // Workspace path: one shared orbit/visibility pass for both modes,
    // the precomputed pair grouping, warm SSSP buffers, and multi-target
    // early exit (matches `snapshot_rtts_on`).
    let mut ws = DijkstraWorkspace::new();
    let mut targets = Vec::new();
    h.bench("inner_loop_workspace", move || {
        let mut acc = 0.0f64;
        for snap in ctx.snapshot_bundle(1800.0, &[Mode::BpOnly, Mode::Hybrid]) {
            for (src, idxs) in ctx.pairs_by_src() {
                targets.clear();
                targets.extend(
                    idxs.iter()
                        .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
                );
                let view = ws.run_multi(&snap.graph, snap.city_node(*src as usize), None, &targets);
                for &i in idxs {
                    let d = view.dist(snap.city_node(ctx.pairs[i].dst as usize));
                    if d.is_finite() {
                        acc += d;
                    }
                }
            }
        }
        acc
    });
    // Sweep path: one warm TimeSweep stepped forward 15 s per iteration,
    // so the snapshot build reuses SoA satellite state, cell residency,
    // and every visibility edge whose satellite stayed in the GT's cell
    // window — the steady-state cost of `sweep_map`-based drivers.
    let mut sweep = TimeSweep::new(ctx, &[Mode::BpOnly, Mode::Hybrid]);
    let mut ws = DijkstraWorkspace::new();
    let mut targets = Vec::new();
    let mut t = 1800.0;
    h.bench("inner_loop_sweep", move || {
        let mut acc = 0.0f64;
        for snap in sweep.step(t) {
            for (src, idxs) in ctx.pairs_by_src() {
                targets.clear();
                targets.extend(
                    idxs.iter()
                        .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
                );
                let view = ws.run_multi(&snap.graph, snap.city_node(*src as usize), None, &targets);
                for &i in idxs {
                    let d = view.dist(snap.city_node(ctx.pairs[i].dst as usize));
                    if d.is_finite() {
                        acc += d;
                    }
                }
            }
        }
        t += 15.0;
        acc
    });
}

fn bench_maxflow(h: &mut Harness, ctx: &StudyContext) {
    // Dinic consumes residual capacities, so both sides pay one network
    // clone per call; the pair isolates the per-call scratch allocation.
    let snap = ctx.snapshot(900.0, Mode::Hybrid);
    let mut base = FlowNetwork::new(snap.graph.num_nodes());
    for e in 0..snap.graph.num_edges() as u32 {
        let (u, v, _) = snap.graph.edge(e);
        base.add_undirected(u, v, 1.0);
    }
    let (s, t) = (snap.city_node(0), snap.city_node(1));
    h.bench("maxflow_fresh", || max_flow(&mut base.clone(), s, t));
    let mut ws = MaxFlowWorkspace::new();
    h.bench("maxflow_workspace", move || {
        max_flow_with(&mut base.clone(), s, t, &mut ws)
    });
}

fn bench_maxmin(h: &mut Harness, ctx: &StudyContext) {
    // The fig4 flow structure: one link per snapshot edge, k=2 disjoint
    // sub-flows per pair, solved to a max-min-fair allocation.
    let snap = ctx.snapshot(900.0, Mode::Hybrid);
    let mut sim = FlowSim::new();
    for e in 0..snap.graph.num_edges() as u32 {
        sim.add_link(snap.edge_capacity_gbps(&ctx.config.network, e));
    }
    for pair in &ctx.pairs {
        let s = snap.city_node(pair.src as usize);
        let d = snap.city_node(pair.dst as usize);
        for p in k_edge_disjoint_paths(&snap.graph, s, d, 2, None) {
            sim.add_flow(p.edges);
        }
    }
    h.bench("maxmin_fresh", || sim.solve().aggregate);
    let mut ws = FlowWorkspace::new();
    h.bench("maxmin_workspace", move || {
        sim.solve_with(&mut ws).aggregate
    });
}

fn main() {
    init_run("routing");
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let mut h = Harness::new("routing");
    bench_sssp(&mut h, &ctx);
    bench_snapshot(&mut h, &ctx);
    bench_inner_loop(&mut h, &ctx);
    bench_maxflow(&mut h, &ctx);
    bench_maxmin(&mut h, &ctx);
    h.finish().expect("write BENCH_routing.json");
    finish_run("routing", &ExperimentScale::Tiny.config());
}
