//! Performance benchmarks of the hot paths: snapshot construction,
//! shortest paths, disjoint paths, max-min allocation, and the
//! attenuation model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use leo_atmo::{AttenuationModel, Climatology, SlantPath};
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_flow::FlowSim;
use leo_geo::{deg_to_rad, GeoPoint};
use leo_graph::{dijkstra, k_edge_disjoint_paths};

fn bench_snapshot_build(c: &mut Criterion) {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    c.bench_function("snapshot_build_hybrid", |b| {
        b.iter(|| std::hint::black_box(ctx.snapshot(1234.0, Mode::Hybrid)))
    });
    c.bench_function("snapshot_build_bp", |b| {
        b.iter(|| std::hint::black_box(ctx.snapshot(1234.0, Mode::BpOnly)))
    });
}

fn bench_propagation(c: &mut Criterion) {
    let constellation = leo_orbit::Constellation::starlink();
    c.bench_function("propagate_1584_sats", |b| {
        b.iter(|| std::hint::black_box(constellation.positions_at(5678.0)))
    });
}

fn bench_dijkstra(c: &mut Criterion) {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    let src = snap.city_node(0);
    c.bench_function("dijkstra_hybrid_snapshot", |b| {
        b.iter(|| std::hint::black_box(dijkstra(&snap.graph, src)))
    });
    c.bench_function("k4_disjoint_paths", |b| {
        b.iter(|| {
            std::hint::black_box(k_edge_disjoint_paths(
                &snap.graph,
                src,
                snap.city_node(20),
                4,
                None,
            ))
        })
    });
}

fn bench_maxmin(c: &mut Criterion) {
    // A synthetic instance shaped like the throughput experiment: many
    // short flows over a shared pool of links.
    let build = || {
        let mut sim = FlowSim::new();
        let links: Vec<_> = (0..2000).map(|i| sim.add_link(20.0 + (i % 5) as f64)).collect();
        for f in 0..1000u32 {
            let path: Vec<_> = (0..6)
                .map(|h| links[((f as usize * 37 + h * 211) % links.len())])
                .collect();
            sim.add_flow(path);
        }
        sim
    };
    c.bench_function("maxmin_1000_flows", |b| {
        b.iter_batched(build, |sim| std::hint::black_box(sim.solve()), BatchSize::SmallInput)
    });
}

fn bench_attenuation(c: &mut Criterion) {
    let model = AttenuationModel::new(Climatology::synthetic());
    let path = SlantPath {
        site: GeoPoint::from_degrees(1.35, 103.8),
        elevation_rad: deg_to_rad(40.0),
        frequency_ghz: 14.25,
    };
    c.bench_function("total_attenuation", |b| {
        b.iter(|| std::hint::black_box(model.total_attenuation_db(&path, 0.5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_snapshot_build, bench_propagation, bench_dijkstra, bench_maxmin, bench_attenuation
}
criterion_main!(benches);
