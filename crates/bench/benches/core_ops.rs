//! Performance benchmarks of the hot paths: snapshot construction,
//! shortest paths, disjoint paths, max-min allocation, and the
//! attenuation model.
//!
//! Runs on the in-tree `leo_util::bench` harness (`harness = false`, so
//! this file owns `main`). `cargo bench -p leo-bench --bench core_ops`
//! prints one line per benchmark and writes `BENCH_core_ops.json`
//! (JSON lines, per-iteration ns) into `LEO_BENCH_DIR` or the cwd.

use leo_atmo::{AttenuationModel, Climatology, SlantPath};
use leo_bench::{finish_run, init_run};
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_flow::FlowSim;
use leo_geo::{deg_to_rad, GeoPoint};
use leo_graph::{dijkstra, k_edge_disjoint_paths};
use leo_util::bench::Harness;

fn bench_snapshot_build(h: &mut Harness) {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    h.bench("snapshot_build_hybrid", || {
        ctx.snapshot(1234.0, Mode::Hybrid)
    });
    h.bench("snapshot_build_bp", || ctx.snapshot(1234.0, Mode::BpOnly));
}

fn bench_propagation(h: &mut Harness) {
    let constellation = leo_orbit::Constellation::starlink();
    h.bench("propagate_1584_sats", || constellation.positions_at(5678.0));
}

fn bench_dijkstra(h: &mut Harness) {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    let src = snap.city_node(0);
    h.bench("dijkstra_hybrid_snapshot", || dijkstra(&snap.graph, src));
    h.bench("k4_disjoint_paths", || {
        k_edge_disjoint_paths(&snap.graph, src, snap.city_node(20), 4, None)
    });
}

fn bench_maxmin(h: &mut Harness) {
    // A synthetic instance shaped like the throughput experiment: many
    // short flows over a shared pool of links. `solve` consumes state, so
    // each iteration rebuilds; construction is a small fraction of the
    // waterfilling cost and is deliberately included in the measurement.
    let build = || {
        let mut sim = FlowSim::new();
        let links: Vec<_> = (0..2000)
            .map(|i| sim.add_link(20.0 + (i % 5) as f64))
            .collect();
        for f in 0..1000u32 {
            let path: Vec<_> = (0..6)
                .map(|h| links[(f as usize * 37 + h * 211) % links.len()])
                .collect();
            sim.add_flow(path);
        }
        sim
    };
    h.bench("maxmin_1000_flows", || build().solve());
}

fn bench_attenuation(h: &mut Harness) {
    let model = AttenuationModel::new(Climatology::synthetic());
    let path = SlantPath {
        site: GeoPoint::from_degrees(1.35, 103.8),
        elevation_rad: deg_to_rad(40.0),
        frequency_ghz: 14.25,
    };
    h.bench("total_attenuation", || {
        model.total_attenuation_db(&path, 0.5)
    });
}

fn main() {
    init_run("core_ops");
    let mut h = Harness::new("core_ops");
    bench_snapshot_build(&mut h);
    bench_propagation(&mut h);
    bench_dijkstra(&mut h);
    bench_maxmin(&mut h);
    bench_attenuation(&mut h);
    h.finish().expect("write BENCH_core_ops.json");
    finish_run("core_ops", &ExperimentScale::Tiny.config());
}
