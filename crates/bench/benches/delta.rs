//! Edge-delta benchmarks: the evidence for the sweep-native delta path.
//!
//! All three benches run the fig2 latency inner loop — advance the
//! sweep one instant, then answer every city-pair RTT for both fig2
//! modes — at a one-second cadence, the consecutive-instant regime the
//! delta machinery serves (fine-grained churn sweeps, per-second
//! telemetry). Each measurement is one full per-snapshot iteration:
//!
//! * `fig2_inner_full_dijkstra` — the full per-instant baseline:
//!   `TimeSweep::step` plus one fresh, fully-settled [`dijkstra`] per
//!   source city per mode, nothing carried across instants.
//! * `fig2_inner_delta_spt` — `TimeSweep::step_with_deltas` plus one
//!   pooled [`SptWorkspace`] per (mode, source) repaired in place from
//!   the per-mode [`EdgeDelta`] (`snapshot_rtts_spt`). Bit-identical
//!   RTTs by the workspace equivalence contract; only the cost moves.
//! * `fig2_inner_early_exit` — context: the query-only production path
//!   (`snapshot_rtts_on`), whose multi-target early exit skips the far
//!   side of the constellation. It answers the 40 pair RTTs and
//!   nothing else; the delta path instead keeps whole trees resident
//!   (every destination, path extraction for churn) while staying
//!   cheaper than paying for those trees with full Dijkstra runs.
//!
//! **The first pair is the gated number**: `scripts/ci.sh` requires
//! the delta step to beat the full per-instant Dijkstra step, and
//! `BENCH_delta.json` records the trajectory. At coarse cadences
//! (≳15 s steps, satellites displaced by ≫100 km) most of each tree
//! genuinely restructures and repair converges to full-rebuild cost —
//! the delta path's win is specific to this fine-grained regime, which
//! is why the cadence here differs from the 15 s snapshot bench.
//!
//! `cargo bench -p leo-bench --bench delta` writes `BENCH_delta.json`
//! (JSON lines) into `LEO_BENCH_DIR` or the cwd.
//!
//! [`dijkstra`]: leo_graph::dijkstra
//! [`SptWorkspace`]: leo_graph::SptWorkspace
//! [`EdgeDelta`]: leo_core::EdgeDelta

use leo_bench::{finish_run, init_run};
use leo_core::experiments::latency::{snapshot_rtts_on, snapshot_rtts_spt};
use leo_core::experiments::spt::SourceSptPool;
use leo_core::{ExperimentScale, Mode, NetworkSnapshot, StudyContext, TimeSweep};
use leo_util::bench::Harness;

/// Sweep cadence: one instant per second (see the module docs).
const DT_S: f64 = 1.0;
const MODES: [Mode; 2] = [Mode::BpOnly, Mode::Hybrid];

fn reachable(rtts: &[Option<f64>]) -> usize {
    rtts.iter().flatten().count()
}

/// Pair RTTs via one fresh, fully-settled Dijkstra per source city —
/// the cost any consumer pays for whole per-instant trees without the
/// delta path. Same reachability answer as the other arms.
fn snapshot_rtts_full(ctx: &StudyContext, snap: &NetworkSnapshot) -> usize {
    let mut n = 0;
    for (src, pair_idxs) in ctx.pairs_by_src() {
        let sp = leo_graph::dijkstra(&snap.graph, snap.city_node(*src as usize));
        for &i in pair_idxs {
            if sp.dist[snap.city_node(ctx.pairs[i].dst as usize) as usize].is_finite() {
                n += 1;
            }
        }
    }
    n
}

fn main() {
    init_run("delta");
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    assert!(
        SourceSptPool::fits(&ctx, MODES.len()),
        "Tiny fig2 must fit the SPT pool budget"
    );
    let mut h = Harness::new("delta");

    let c = &ctx;
    let mut sweep = TimeSweep::new(c, &MODES);
    let mut t = 0.0;
    h.bench("fig2_inner_full_dijkstra", move || {
        t += DT_S;
        let snaps = sweep.step(t);
        snaps
            .iter()
            .map(|s| snapshot_rtts_full(c, s))
            .sum::<usize>()
    });

    let mut sweep = TimeSweep::new(c, &MODES);
    let mut pools: Vec<SourceSptPool> = MODES.iter().map(|_| SourceSptPool::new(c)).collect();
    let mut t = 0.0;
    h.bench("fig2_inner_delta_spt", move || {
        t += DT_S;
        let (snaps, deltas) = sweep.step_with_deltas(t);
        pools
            .iter_mut()
            .enumerate()
            .map(|(mi, pool)| reachable(&snapshot_rtts_spt(c, &snaps[mi], &deltas[mi], pool)))
            .sum::<usize>()
    });

    let mut sweep = TimeSweep::new(c, &MODES);
    let mut t = 0.0;
    h.bench("fig2_inner_early_exit", move || {
        t += DT_S;
        let snaps = sweep.step(t);
        snaps
            .iter()
            .map(|s| reachable(&snapshot_rtts_on(c, s)))
            .sum::<usize>()
    });

    h.finish().expect("write BENCH_delta.json");
    finish_run("delta", &ExperimentScale::Tiny.config());
}
