//! End-to-end figure regeneration benches: each target runs a scaled-down
//! version of a paper experiment and sanity-checks its shape (who wins),
//! so `cargo bench` both times the pipelines and re-verifies the paper's
//! qualitative results.

use criterion::{criterion_group, criterion_main, Criterion};
use leo_core::experiments::latency::latency_study;
use leo_core::experiments::throughput::throughput;
use leo_core::experiments::weather::weather_study;
use leo_core::{ExperimentScale, Mode, StudyContext};

fn ctx() -> StudyContext {
    StudyContext::build(ExperimentScale::Tiny.config())
}

fn bench_fig2(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig2_latency_study_tiny", |b| {
        b.iter(|| {
            let bp = latency_study(&ctx, Mode::BpOnly, 0);
            let hy = latency_study(&ctx, Mode::Hybrid, 0);
            // Shape check: hybrid min RTT never worse.
            for (x, y) in bp.iter().zip(&hy) {
                if let (Some(bm), Some(hm)) = (x.min_rtt_ms, y.min_rtt_ms) {
                    assert!(hm <= bm + 1e-9);
                }
            }
            std::hint::black_box((bp, hy))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig4_throughput_tiny", |b| {
        b.iter(|| {
            let bp = throughput(&ctx, 0.0, Mode::BpOnly, 1);
            let hy = throughput(&ctx, 0.0, Mode::Hybrid, 1);
            assert!(hy.aggregate_gbps > bp.aggregate_gbps, "hybrid must win");
            std::hint::black_box((bp, hy))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig6_weather_study_tiny", |b| {
        b.iter(|| std::hint::black_box(weather_study(&ctx, 7, 0)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig4, bench_fig6
}
criterion_main!(figures);
