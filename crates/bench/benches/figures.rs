//! End-to-end figure regeneration benches: each target runs a scaled-down
//! version of a paper experiment and sanity-checks its shape (who wins),
//! so `cargo bench` both times the pipelines and re-verifies the paper's
//! qualitative results.
//!
//! Runs on the in-tree `leo_util::bench` harness (`harness = false`);
//! writes `BENCH_figures.json` into `LEO_BENCH_DIR` or the cwd.

use leo_bench::{finish_run, init_run};
use leo_core::experiments::latency::latency_study;
use leo_core::experiments::throughput::throughput;
use leo_core::experiments::weather::weather_study;
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_util::bench::Harness;

fn ctx() -> StudyContext {
    StudyContext::build(ExperimentScale::Tiny.config())
}

fn bench_fig2(h: &mut Harness) {
    let ctx = ctx();
    h.bench("fig2_latency_study_tiny", || {
        let bp = latency_study(&ctx, Mode::BpOnly, 0);
        let hy = latency_study(&ctx, Mode::Hybrid, 0);
        // Shape check: hybrid min RTT never worse.
        for (x, y) in bp.iter().zip(&hy) {
            if let (Some(bm), Some(hm)) = (x.min_rtt_ms, y.min_rtt_ms) {
                assert!(hm <= bm + 1e-9);
            }
        }
        (bp, hy)
    });
}

fn bench_fig4(h: &mut Harness) {
    let ctx = ctx();
    h.bench("fig4_throughput_tiny", || {
        let bp = throughput(&ctx, 0.0, Mode::BpOnly, 1);
        let hy = throughput(&ctx, 0.0, Mode::Hybrid, 1);
        assert!(hy.aggregate_gbps > bp.aggregate_gbps, "hybrid must win");
        (bp, hy)
    });
}

fn bench_fig6(h: &mut Harness) {
    let ctx = ctx();
    h.bench("fig6_weather_study_tiny", || weather_study(&ctx, 7, 0));
}

fn main() {
    init_run("figures");
    let mut h = Harness::new("figures");
    bench_fig2(&mut h);
    bench_fig4(&mut h);
    bench_fig6(&mut h);
    h.finish().expect("write BENCH_figures.json");
    finish_run("figures", &ExperimentScale::Tiny.config());
}
