//! Telemetry overhead microbench: what a span enter/exit, a counter
//! increment, and a histogram sample cost with logging disabled (the
//! default — one relaxed atomic load on every probe) versus enabled at
//! `info` (JSONL emission for spans, atomic updates for the rest).
//!
//! Runs on the in-tree harness (`harness = false`); writes
//! `BENCH_telemetry.json` into `LEO_BENCH_DIR` or the cwd. The numbers
//! back the instrumentation policy: probes stay on hot paths
//! (`dijkstra`, `solve`, packet events) because the disabled cost is a
//! few nanoseconds.

use leo_util::bench::Harness;
use leo_util::span;
use leo_util::telemetry::{self, Counter, Histogram, Level, RunManifest};

static PROBE_COUNTER: Counter = Counter::new("bench_probe_counter");
static PROBE_HIST: Histogram = Histogram::new("bench_probe_hist");

fn main() {
    let mut h = Harness::new("telemetry");

    // --- Disabled: the cost every production run pays by default. ---
    telemetry::set_level(Level::Off);
    h.bench("span_disabled", || {
        let _s = span!("probe_span");
    });
    h.bench("counter_add_disabled", || PROBE_COUNTER.add(1));
    h.bench("hist_record_disabled", || PROBE_HIST.record(1234));

    // --- Enabled at info, sink to a scratch dir. Spans pay the JSONL
    // emission; counters/histograms stay lock-free atomics. ---
    let dir = std::env::temp_dir().join("leo_bench_telemetry_scratch");
    telemetry::set_level(Level::Info);
    telemetry::init_at(&dir, "telemetry_overhead").expect("open telemetry sink");
    h.bench("span_enabled_info", || {
        let _s = span!("probe_span");
    });
    h.bench("counter_add_enabled", || PROBE_COUNTER.add(1));
    h.bench("hist_record_enabled", || PROBE_HIST.record(1234));

    // Close the sink cleanly, then drop the scratch log.
    telemetry::finish_run(&RunManifest::new("telemetry_overhead", 0, 0, 1));
    telemetry::set_level(Level::Off);
    let _ = std::fs::remove_dir_all(&dir);

    h.finish().expect("write BENCH_telemetry.json");
}
