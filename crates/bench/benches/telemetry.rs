//! Telemetry overhead microbench: what a span enter/exit, a counter
//! increment, and a histogram sample cost with logging disabled (the
//! default — one relaxed atomic load on every probe) versus enabled at
//! `info` (JSONL emission for spans, atomic updates for the rest).
//!
//! Runs on the in-tree harness (`harness = false`); writes
//! `BENCH_telemetry.json` into `LEO_BENCH_DIR` or the cwd. The numbers
//! back the instrumentation policy: probes stay on hot paths
//! (`dijkstra`, `solve`, packet events) because the disabled cost is a
//! few nanoseconds.

use leo_util::bench::Harness;
use leo_util::sketch::{FixedSum, QuantileSketch};
use leo_util::span;
use leo_util::telemetry::{self, Counter, Histogram, Level, MetricSeries, RunManifest};

static PROBE_COUNTER: Counter = Counter::new("bench_probe_counter");
static PROBE_HIST: Histogram = Histogram::new("bench_probe_hist");

fn main() {
    let mut h = Harness::new("telemetry");

    // --- Disabled: the cost every production run pays by default. ---
    telemetry::set_level(Level::Off);
    h.bench("span_disabled", || {
        let _s = span!("probe_span");
    });
    h.bench("counter_add_disabled", || PROBE_COUNTER.add(1));
    h.bench("hist_record_disabled", || PROBE_HIST.record(1234));
    let mut series_off = MetricSeries::new("bench_probe_series");
    h.bench("series_record_disabled", || series_off.record(12.34));

    // --- Sketch primitives: what the streaming drivers pay per sample
    // (independent of the log level once a series is recording). ---
    let mut sketch = QuantileSketch::new();
    let mut x = 0.0f64;
    h.bench("sketch_record", || {
        x += 0.7;
        sketch.record(x);
    });
    let mut donor = QuantileSketch::new();
    for i in 0..10_000u32 {
        donor.record(0.01 * (1.0 + i as f64));
    }
    let mut target = QuantileSketch::new();
    target.record(1.0);
    h.bench("sketch_merge_10k", || target.merge(&donor));
    let mut sum = FixedSum::new();
    h.bench("fixed_sum_add", || sum.add(3.25));

    // --- Enabled at info, sink to a scratch dir. Spans pay the JSONL
    // emission; counters/histograms stay lock-free atomics. ---
    let dir = std::env::temp_dir().join("leo_bench_telemetry_scratch");
    telemetry::set_level(Level::Info);
    telemetry::init_at(&dir, "telemetry_overhead").expect("open telemetry sink");
    h.bench("span_enabled_info", || {
        let _s = span!("probe_span");
    });
    h.bench("counter_add_enabled", || PROBE_COUNTER.add(1));
    h.bench("hist_record_enabled", || PROBE_HIST.record(1234));
    let mut series_on = MetricSeries::new("bench_probe_series_on");
    let mut snap_idx = 0usize;
    h.bench("series_snapshot_emit_enabled", || {
        series_on.record(1.5);
        series_on.snapshot_done(snap_idx, 0.0);
        snap_idx += 1;
    });

    // Close the sink cleanly, then drop the scratch log.
    telemetry::finish_run(&RunManifest::new("telemetry_overhead", 0, 0, 1));
    telemetry::set_level(Level::Off);
    let _ = std::fs::remove_dir_all(&dir);

    h.finish().expect("write BENCH_telemetry.json");
}
