//! Fig. 7 — the Delhi–Sydney BP path crosses the high-attenuation
//! tropics via aircraft and on-land GT hops, while the ISL path overflies
//! the entire region. Dumps the path hops and the regional attenuation
//! heat-map raster.

use leo_bench::{
    config_with_cities, finish_run, init_run, print_table, results_dir, scale_from_args,
};
use leo_core::experiments::weather::attenuation_raster;
use leo_core::output::CsvWriter;
use leo_core::{Mode, NodeKind, StudyContext};
use leo_graph::{dijkstra, extract_path};
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig7_delhi_sydney");
    let ctx = StudyContext::build(config_with_cities(scale, 340));
    let src = ctx.ground.city_index("Delhi").expect("Delhi loaded");
    let dst = ctx.ground.city_index("Sydney").expect("Sydney loaded");

    for mode in [Mode::BpOnly, Mode::IslOnly] {
        let snap = ctx.snapshot(0.0, mode);
        let sp = dijkstra(&snap.graph, snap.city_node(src));
        match extract_path(&sp, snap.city_node(dst)) {
            Some(p) => {
                let mut rows = Vec::new();
                for &n in &p.nodes {
                    let (kind, pos) = match snap.nodes[n as usize] {
                        NodeKind::Satellite(id) => (format!("sat {id}"), None),
                        NodeKind::City(i) => (
                            format!("city {}", ctx.ground.cities[i as usize].name),
                            snap.ground_position(n),
                        ),
                        NodeKind::Relay(i) => (format!("relay {i}"), snap.ground_position(n)),
                        NodeKind::Aircraft(id) => {
                            (format!("aircraft {id}"), snap.ground_position(n))
                        }
                    };
                    rows.push(vec![kind, pos.map_or(String::new(), |g| format!("{g}"))]);
                }
                print_table(
                    &format!(
                        "Fig 7: Delhi->Sydney {mode:?} path ({:.1} ms RTT)",
                        leo_core::rtt_ms(p.total_weight)
                    ),
                    &["hop", "ground position"],
                    &rows,
                );
                let ground_hops = p
                    .nodes
                    .iter()
                    .filter(|&&n| snap.nodes[n as usize].is_ground())
                    .count()
                    - 2;
                diag!(
                    "intermediate ground hops: {ground_hops} (paper's example: 2 aircraft + 4 GTs)"
                );
            }
            None => diag!("{mode:?}: no path at t=0"),
        }
    }

    // Heat map over South/Southeast Asia and down to Australia.
    let raster = attenuation_raster(&ctx, (-40.0, 35.0), (60.0, 160.0), 2.5, 0.5);
    let path = results_dir().join("fig7_attenuation_raster.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["lat", "lon", "attenuation_db"]).unwrap();
    for (lat, lon, a) in &raster {
        w.num_row(&[*lat, *lon, *a]).unwrap();
    }
    w.flush().unwrap();
    let max = raster.iter().map(|r| r.2).fold(f64::NEG_INFINITY, f64::max);
    let min = raster.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    diag!(
        "raster: {} cells, attenuation {:.2}-{:.2} dB",
        raster.len(),
        min,
        max
    );
    diag!("wrote {}", path.display());
    finish_run("fig7_delhi_sydney", &ctx.config);
}
