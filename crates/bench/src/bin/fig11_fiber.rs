//! Fig. 11 — "distributed GTs": Paris borrowing the satellite visibility
//! of 5 fiber-connected nearby cities multiplies its reachable satellites
//! and aggregate up/down capacity for a sub-millisecond fiber detour.

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::fiber::{fiber_augmentation, paris_satellite_sites};
use leo_core::output::CsvWriter;
use leo_core::StudyContext;
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig11_fiber");
    let ctx = StudyContext::build(scale.config());
    let (paris, sites) = paris_satellite_sites();

    let times: Vec<f64> = ctx.config.snapshot_times_s.clone();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &t in &times {
        let f = fiber_augmentation(&ctx, paris, &sites, t);
        rows.push(vec![
            format!("{t:>6.0}"),
            f.metro_visible.to_string(),
            f.augmented_visible.to_string(),
            format!("{:.0}", f.metro_capacity_gbps),
            format!("{:.0}", f.augmented_capacity_gbps),
            format!("{:.2}", f.max_fiber_detour_ms),
        ]);
        csv.push((t, f));
    }
    print_table(
        "Fig 11: Paris + 5 distributed GTs over fiber",
        &[
            "t(s)",
            "metro sats",
            "augmented sats",
            "metro Gbps",
            "augmented Gbps",
            "fiber detour (ms)",
        ],
        &rows,
    );
    let avg_ratio: f64 = csv
        .iter()
        .map(|(_, f)| f.augmented_capacity_gbps / f.metro_capacity_gbps.max(1e-9))
        .sum::<f64>()
        / csv.len() as f64;
    diag!("average capacity multiplier: {avg_ratio:.1}x");

    let path = results_dir().join("fig11_fiber.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&[
        "t_s",
        "metro_visible",
        "augmented_visible",
        "metro_gbps",
        "augmented_gbps",
        "max_fiber_detour_ms",
    ])
    .unwrap();
    for (t, f) in csv {
        w.num_row(&[
            t,
            f.metro_visible as f64,
            f.augmented_visible as f64,
            f.metro_capacity_gbps,
            f.augmented_capacity_gbps,
            f.max_fiber_detour_ms,
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig11_fiber", &ctx.config);
}
