//! `leo-report` — run-analysis and A/B regression tool for telemetry
//! run logs (`RUN_<label>.jsonl`).
//!
//! Single-run mode renders the run's provenance, a per-phase wall-time
//! breakdown, the counter table, sketch-derived percentile summaries of
//! every streamed `series` metric, and a heartbeat summary:
//!
//! ```text
//! leo-report RUN_fig2_latency.jsonl
//! ```
//!
//! Two-run mode diffs run B against baseline run A and exits nonzero if
//! any *deterministic* quantity regressed beyond `--threshold-pct`
//! (default 0 — the workspace's sweeps are bit-reproducible, so two runs
//! of the same figure at the same scale must agree exactly):
//!
//! ```text
//! leo-report RUN_a.jsonl RUN_b.jsonl --threshold-pct 0
//! ```
//!
//! Counters whose name ends in `_ns` (time measurements, e.g.
//! `par_worker_busy_ns`), per-phase wall times, and total wall time are
//! inherently machine-noisy: they are always reported
//! informational-only and never fail the diff.
//!
//! Merge mode (`--merge`) treats every input path as one shard-worker
//! log of a single sharded run (`leo-shard`'s `--spawn` protocol writes
//! `RUN_<label>.s<i>of<K>.jsonl` per worker) and analyzes the union:
//!
//! ```text
//! leo-report --merge RUN_fig2_latency.s*.jsonl
//! ```
//!
//! Counters and phase tallies sum across workers, series sketches merge
//! exactly (bucket counts and fixed-point sums — the merged quantiles
//! are bit-identical to a single-process run over the same samples; the
//! `snaps` column sums, since every worker emits its own per-snapshot
//! events), and wall time / peak RSS take the per-worker max. Workers
//! must agree on `config_hash` and seed; extras are kept only where all
//! workers agree.
//!
//! `--assert-peak-rss-mb <N>` additionally fails (exit 1) if the run's
//! peak resident set — the max over heartbeat `peak_rss_kb` samples and
//! the manifest's `peak_rss_kb` — exceeds `N` MiB. CI uses this to pin
//! the streaming pipeline's O(1)-in-snapshots memory ceiling. With
//! `--merge` the assertion bounds the *per-worker* peak, which is the
//! out-of-core guarantee `ext_million_pairs` ships.

use leo_bench::print_table;
use leo_util::sketch::QuantileSketch;
use leo_util::telemetry::{validate_event_line, Json};

/// A named statistic read off a sketch (for the series diff table).
type SketchStat<'f> = (&'f str, &'f dyn Fn(&QuantileSketch) -> f64);

fn fail(msg: &str) -> ! {
    eprintln!("leo-report: {msg}");
    std::process::exit(2);
}

/// One fully-parsed run log.
struct Run {
    path: String,
    label: String,
    config_hash: String,
    level: String,
    seed: f64,
    threads: f64,
    wall_ns: f64,
    /// `(name, count, total_ns, max_ns)` per phase, manifest order.
    phases: Vec<(String, f64, f64, f64)>,
    /// `(name, value)` per counter, manifest order.
    counters: Vec<(String, f64)>,
    /// Non-schema manifest fields (cities, pairs, lint_clean, …).
    extras: Vec<(String, String)>,
    /// Per metric name: number of `series` events and the merged sketch.
    series: Vec<(String, u64, QuantileSketch)>,
    heartbeats: u64,
    last_rate_per_s: Option<f64>,
    /// Max over heartbeat samples and the manifest's `peak_rss_kb`.
    peak_rss_kb: u64,
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

fn parse_run(path: &str) -> Run {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        fail(&format!("{path}: empty run log"));
    }
    let mut run = Run {
        path: path.to_string(),
        label: String::new(),
        config_hash: String::new(),
        level: String::new(),
        seed: f64::NAN,
        threads: f64::NAN,
        wall_ns: f64::NAN,
        phases: Vec::new(),
        counters: Vec::new(),
        extras: Vec::new(),
        series: Vec::new(),
        heartbeats: 0,
        last_rate_per_s: None,
        peak_rss_kb: 0,
    };
    let mut saw_manifest = false;
    for (i, line) in lines.iter().enumerate() {
        let ty = validate_event_line(line)
            .unwrap_or_else(|e| fail(&format!("{path}:{}: {e} (run `validate_run`?)", i + 1)));
        // validate_event_line parsed it once already; re-parse for the
        // fields (report runs on whole files, not hot paths).
        let v = Json::parse(line).unwrap_or_else(|e| fail(&format!("{path}:{}: {e}", i + 1)));
        match ty {
            "series" => {
                let name = v.get("name").and_then(Json::as_str).unwrap_or_default();
                let sketch = QuantileSketch::from_json(&v)
                    .unwrap_or_else(|e| fail(&format!("{path}:{}: bad sketch: {e}", i + 1)));
                match run.series.iter_mut().find(|(n, _, _)| n == name) {
                    Some((_, snaps, merged)) => {
                        *snaps += 1;
                        merged.merge(&sketch);
                    }
                    None => run.series.push((name.to_string(), 1, sketch)),
                }
            }
            "heartbeat" => {
                run.heartbeats += 1;
                run.last_rate_per_s = Some(num(&v, "rate_per_s"));
                run.peak_rss_kb = run.peak_rss_kb.max(num(&v, "peak_rss_kb") as u64);
            }
            "manifest" => {
                saw_manifest = true;
                run.label = v
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                run.config_hash = v
                    .get("config_hash")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                run.level = v
                    .get("level")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                run.seed = num(&v, "seed");
                run.threads = num(&v, "threads");
                run.wall_ns = num(&v, "wall_ns");
                if let Some(Json::Obj(fields)) = v.get("phases") {
                    for (name, p) in fields {
                        run.phases.push((
                            name.clone(),
                            num(p, "count"),
                            num(p, "total_ns"),
                            num(p, "max_ns"),
                        ));
                    }
                }
                if let Some(Json::Obj(fields)) = v.get("counters") {
                    for (name, c) in fields {
                        run.counters
                            .push((name.clone(), c.as_num().unwrap_or(f64::NAN)));
                    }
                }
                if let Some(Json::Obj(fields)) = v.get("top") {
                    let _ = fields; // forward-compat: ignore unknown objects
                }
                // Everything beyond the fixed schema is provenance extras
                // (emitted as strings by `RunManifest::with`).
                if let Json::Obj(fields) = &v {
                    const FIXED: &[&str] = &[
                        "type",
                        "label",
                        "config_hash",
                        "seed",
                        "threads",
                        "wall_ns",
                        "level",
                        "phases",
                        "counters",
                        "hists",
                    ];
                    for (k, val) in fields {
                        if !FIXED.contains(&k.as_str()) {
                            let s = match val {
                                Json::Str(s) => s.clone(),
                                Json::Num(n) => format!("{n}"),
                                other => format!("{other:?}"),
                            };
                            run.extras.push((k.clone(), s));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if !saw_manifest {
        fail(&format!(
            "{path}: no manifest event — truncated run log (validate with `validate_run`)"
        ));
    }
    if let Some((_, p)) = run.extras.iter().find(|(k, _)| k == "peak_rss_kb") {
        if let Ok(kb) = p.parse::<u64>() {
            run.peak_rss_kb = run.peak_rss_kb.max(kb);
        }
    }
    run
}

/// Strip a `.s<i>of<K>` shard-worker suffix off a run label
/// (`fig2_latency.s0of4` → `fig2_latency`).
fn base_label(label: &str) -> &str {
    if let Some(pos) = label.rfind(".s") {
        if let Some((i, k)) = label[pos + 2..].split_once("of") {
            let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
            if digits(i) && digits(k) {
                return &label[..pos];
            }
        }
    }
    label
}

/// Merge shard-worker runs of one sharded study into a single logical
/// run. Counters and phase tallies sum, series sketches merge exactly,
/// wall time and peak RSS take the per-worker max (workers run
/// concurrently), extras survive only where all workers agree.
fn merge_runs(mut runs: Vec<Run>) -> Run {
    let mut m = runs.remove(0);
    let others = runs.len();
    m.label = base_label(&m.label).to_string();
    for r in runs {
        if r.config_hash != m.config_hash {
            fail(&format!(
                "--merge: {} has config_hash {} but {} has {} — not shards of one run",
                r.path, r.config_hash, m.path, m.config_hash
            ));
        }
        let seeds_differ = r.seed != m.seed && !(r.seed.is_nan() && m.seed.is_nan());
        if seeds_differ {
            fail(&format!(
                "--merge: {} has seed {} but {} has {}",
                r.path, r.seed, m.path, m.seed
            ));
        }
        m.wall_ns = m.wall_ns.max(r.wall_ns);
        m.threads = m.threads.max(r.threads);
        for (name, count, total_ns, max_ns) in r.phases {
            match m.phases.iter_mut().find(|(n, _, _, _)| *n == name) {
                Some((_, c, t, mx)) => {
                    *c += count;
                    *t += total_ns;
                    *mx = mx.max(max_ns);
                }
                None => m.phases.push((name, count, total_ns, max_ns)),
            }
        }
        for (name, value) in r.counters {
            match m.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += value,
                None => m.counters.push((name, value)),
            }
        }
        for (name, snaps, sketch) in r.series {
            match m.series.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, sn, sk)) => {
                    *sn += snaps;
                    sk.merge(&sketch);
                }
                None => m.series.push((name, snaps, sketch)),
            }
        }
        m.extras
            .retain(|(k, v)| r.extras.iter().any(|(rk, rv)| rk == k && rv == v));
        m.heartbeats += r.heartbeats;
        m.last_rate_per_s = None;
        m.peak_rss_kb = m.peak_rss_kb.max(r.peak_rss_kb);
    }
    if others > 0 {
        m.path = format!("{} + {others} more shard log(s)", m.path);
    }
    m.extras
        .push(("merged_shard_logs".to_string(), format!("{}", others + 1)));
    m
}

fn ms(ns: f64) -> String {
    format!("{:.1}", ns / 1e6)
}

fn report_single(run: &Run) {
    println!("run {} ({})", run.label, run.path);
    println!(
        "  config_hash {}  seed {}  threads {}  level {}  wall {:.2}s",
        run.config_hash,
        run.seed,
        run.threads,
        run.level,
        run.wall_ns / 1e9
    );
    for (k, v) in &run.extras {
        println!("  {k} = {v}");
    }
    if run.heartbeats > 0 {
        println!(
            "  heartbeats: {} (last rate {:.2}/s), peak RSS {:.1} MiB",
            run.heartbeats,
            run.last_rate_per_s.unwrap_or(f64::NAN),
            run.peak_rss_kb as f64 / 1024.0
        );
    } else if run.peak_rss_kb > 0 {
        println!("  peak RSS {:.1} MiB", run.peak_rss_kb as f64 / 1024.0);
    }

    if !run.phases.is_empty() {
        let mut phases = run.phases.clone();
        phases.sort_by(|a, b| b.2.total_cmp(&a.2));
        let rows: Vec<Vec<String>> = phases
            .iter()
            .map(|(name, count, total_ns, max_ns)| {
                vec![
                    name.clone(),
                    format!("{count}"),
                    ms(*total_ns),
                    ms(*max_ns),
                    format!("{:.1}%", 100.0 * total_ns / run.wall_ns.max(1.0)),
                ]
            })
            .collect();
        print_table(
            "phases",
            &["phase", "count", "total_ms", "max_ms", "% wall"],
            &rows,
        );
    }

    if !run.counters.is_empty() {
        let rows: Vec<Vec<String>> = run
            .counters
            .iter()
            .map(|(name, v)| vec![name.clone(), format!("{v}")])
            .collect();
        print_table("counters", &["counter", "value"], &rows);
    }

    if !run.series.is_empty() {
        let rows: Vec<Vec<String>> = run
            .series
            .iter()
            .map(|(name, snaps, s)| {
                vec![
                    name.clone(),
                    format!("{snaps}"),
                    format!("{}", s.count()),
                    format!("{:.3}", s.min()),
                    format!("{:.3}", s.percentile(50.0)),
                    format!("{:.3}", s.percentile(90.0)),
                    format!("{:.3}", s.percentile(99.0)),
                    format!("{:.3}", s.max()),
                    format!("{:.3}", s.mean()),
                ]
            })
            .collect();
        print_table(
            "series (sketch-derived, ±1.6% relative rank error)",
            &[
                "metric", "snaps", "count", "min", "p50", "p90", "p99", "max", "mean",
            ],
            &rows,
        );
    }
}

/// A diffable quantity: deterministic ones fail the diff on mismatch,
/// informational ones (time measurements) never do.
struct DiffRow {
    name: String,
    a: f64,
    b: f64,
    informational: bool,
}

fn find_series<'r>(run: &'r Run, n: &str) -> Option<&'r (String, u64, QuantileSketch)> {
    run.series.iter().find(|(sn, _, _)| sn == n)
}

/// How one quantity moved between runs. Relative percent is undefined
/// for a zero baseline (division by zero) and for a quantity present in
/// only one run — those cases are reported as an absolute delta / "n/a"
/// with a deterministic verdict instead of a NaN/inf percent.
#[derive(Clone, Copy)]
enum DeltaKind {
    /// Bit-equal (or absent from both runs).
    Exact,
    /// Both present, nonzero baseline: relative percent.
    RelPct(f64),
    /// Zero baseline, nonzero change: absolute delta.
    AbsFromZero(f64),
    /// Present in exactly one run.
    OneSided,
}

fn delta_kind(a: f64, b: f64) -> DeltaKind {
    if a == b || (a.is_nan() && b.is_nan()) {
        DeltaKind::Exact
    } else if a.is_nan() || b.is_nan() {
        DeltaKind::OneSided
    } else if a == 0.0 {
        DeltaKind::AbsFromZero(b)
    } else {
        DeltaKind::RelPct((b - a).abs() / a.abs() * 100.0)
    }
}

fn collect_diff_rows(a: &Run, b: &Run) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    rows.push(DiffRow {
        name: "wall_ns".into(),
        a: a.wall_ns,
        b: b.wall_ns,
        informational: true,
    });
    // Counters: union of both runs' names, A's order first.
    let mut names: Vec<&String> = a.counters.iter().map(|(n, _)| n).collect();
    for (n, _) in &b.counters {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    let lookup = |run: &Run, n: &str| {
        run.counters
            .iter()
            .find(|(cn, _)| cn == n)
            .map_or(f64::NAN, |(_, v)| *v)
    };
    for n in names {
        rows.push(DiffRow {
            name: format!("counter {n}"),
            a: lookup(a, n),
            b: lookup(b, n),
            informational: n.ends_with("_ns"),
        });
    }
    for (name, _, total_ns, _) in &a.phases {
        let other = b
            .phases
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map_or(f64::NAN, |(_, _, t, _)| *t);
        rows.push(DiffRow {
            name: format!("phase {name} total_ns"),
            a: *total_ns,
            b: other,
            informational: true,
        });
    }
    // Series: every sketch-derived statistic is deterministic.
    let mut snames: Vec<&String> = a.series.iter().map(|(n, _, _)| n).collect();
    for (n, _, _) in &b.series {
        if !snames.contains(&n) {
            snames.push(n);
        }
    }
    for n in snames.into_iter().cloned().collect::<Vec<String>>() {
        let (sa, sb) = (find_series(a, &n), find_series(b, &n));
        let stat = |s: Option<&(String, u64, QuantileSketch)>,
                    f: &dyn Fn(&QuantileSketch) -> f64| {
            s.map_or(f64::NAN, |(_, _, sk)| f(sk))
        };
        let stats: [SketchStat; 7] = [
            ("count", &|s| s.count() as f64),
            ("low", &|s| s.low_count() as f64),
            ("sum", &|s| s.sum()),
            ("min", &|s| s.min()),
            ("max", &|s| s.max()),
            ("p50", &|s| s.percentile(50.0)),
            ("p99", &|s| s.percentile(99.0)),
        ];
        for (sname, f) in stats {
            rows.push(DiffRow {
                name: format!("series {n} {sname}"),
                a: stat(sa, f),
                b: stat(sb, f),
                informational: false,
            });
        }
    }
    rows
}

fn report_diff(a: &Run, b: &Run, threshold_pct: f64) -> usize {
    println!(
        "diff: A = {} ({}), B = {} ({}), threshold {threshold_pct}%",
        a.label, a.path, b.label, b.path
    );
    if a.config_hash != b.config_hash {
        println!(
            "  note: config hashes differ ({} vs {}) — comparing across configurations",
            a.config_hash, b.config_hash
        );
    }
    let rows = collect_diff_rows(a, b);
    let mut regressions = 0usize;
    let mut table = Vec::new();
    for r in &rows {
        let kind = delta_kind(r.a, r.b);
        let delta_str = match kind {
            DeltaKind::Exact => "0.000%".to_string(),
            DeltaKind::RelPct(p) => format!("{p:.3}%"),
            DeltaKind::AbsFromZero(d) => format!("{d:+} (abs, zero baseline)"),
            DeltaKind::OneSided => "n/a".to_string(),
        };
        let verdict = if r.informational {
            "info".to_string()
        } else {
            match kind {
                DeltaKind::Exact => continue, // exact matches stay out of the table
                // A deterministic quantity that appears from (or
                // vanishes to) nothing can't be waved through by any
                // relative threshold — always a regression, reported
                // with its absolute movement.
                DeltaKind::AbsFromZero(_) => {
                    regressions += 1;
                    "REGRESSION (zero baseline)".to_string()
                }
                DeltaKind::OneSided => {
                    regressions += 1;
                    "REGRESSION (one run only)".to_string()
                }
                DeltaKind::RelPct(p) if p > threshold_pct => {
                    regressions += 1;
                    "REGRESSION".to_string()
                }
                DeltaKind::RelPct(_) => "ok (within threshold)".to_string(),
            }
        };
        table.push(vec![
            r.name.clone(),
            format!("{}", r.a),
            format!("{}", r.b),
            delta_str,
            verdict,
        ]);
    }
    if table.is_empty() {
        println!(
            "  no differences: {} quantities compared, all exact",
            rows.len()
        );
    } else {
        print_table(
            "differences",
            &["quantity", "A", "B", "delta", "verdict"],
            &table,
        );
        let exact = rows.len() - table.len();
        println!("  ({exact} further quantities matched exactly)");
    }
    regressions
}

const USAGE: &str = "usage: leo-report [--threshold-pct P] [--assert-peak-rss-mb N] \
                     <RUN_a.jsonl> [RUN_b.jsonl] | --merge <RUN_shard.jsonl>...";

fn main() {
    let mut threshold_pct = 0.0f64;
    let mut assert_peak_rss_mb: Option<f64> = None;
    let mut merge = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--merge" => merge = true,
            "--threshold-pct" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--threshold-pct needs a number"));
            }
            "--assert-peak-rss-mb" => {
                assert_peak_rss_mb = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--assert-peak-rss-mb needs a number")),
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() || (!merge && paths.len() > 2) {
        fail(USAGE);
    }

    let mut runs: Vec<Run> = paths.iter().map(|p| parse_run(p)).collect();
    if merge {
        let merged = merge_runs(runs);
        runs = vec![merged];
    }
    let mut failures = 0usize;
    if runs.len() == 2 {
        failures += report_diff(&runs[0], &runs[1], threshold_pct);
    } else {
        report_single(&runs[0]);
    }
    if let Some(limit_mb) = assert_peak_rss_mb {
        let run = runs.last().expect("at least one run");
        let peak_mb = run.peak_rss_kb as f64 / 1024.0;
        if run.peak_rss_kb == 0 {
            eprintln!(
                "leo-report: --assert-peak-rss-mb: {} has no RSS samples \
                 (no heartbeats and no peak_rss_kb manifest field)",
                run.path
            );
            failures += 1;
        } else if peak_mb > limit_mb {
            eprintln!("leo-report: peak RSS {peak_mb:.1} MiB exceeds budget {limit_mb} MiB");
            failures += 1;
        } else {
            println!("peak RSS {peak_mb:.1} MiB within budget {limit_mb} MiB");
        }
    }
    if failures > 0 {
        eprintln!("leo-report: {failures} regression(s)");
        std::process::exit(1);
    }
}
