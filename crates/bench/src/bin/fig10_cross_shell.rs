//! Fig. 10 — Brisbane–Tokyo with a 53° shell plus a polar shell: a BP
//! "transition point" lets the path switch shells (no cross-shell ISLs
//! exist), cutting latency below what either shell's ISLs alone achieve.

use leo_bench::{
    config_with_cities, finish_run, init_run, print_table, results_dir, scale_from_args,
};
use leo_core::experiments::cross_shell::{cross_shell_study, two_shell_context};
use leo_core::output::CsvWriter;
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig10_cross_shell");
    let ctx = two_shell_context(config_with_cities(scale, 340));
    diag!(
        "fig10: {} satellites across {} shells",
        ctx.num_satellites(),
        ctx.constellation.shells().len()
    );
    let rows = cross_shell_study(&ctx, "Brisbane", "Tokyo", 0);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:>6.0}", r.t_s),
                r.isl_only_rtt_ms.map_or("-".into(), |v| format!("{v:.1}")),
                r.hybrid_rtt_ms.map_or("-".into(), |v| format!("{v:.1}")),
                format!("{}", r.hybrid_shells_used),
                format!("{}", r.hybrid_ground_bounces),
            ]
        })
        .collect();
    print_table(
        "Fig 10: Brisbane -> Tokyo, ISL-only vs hybrid (BP shell transitions)",
        &[
            "t(s)",
            "ISL-only RTT",
            "hybrid RTT",
            "shells used",
            "ground bounces",
        ],
        &table,
    );

    let gains: Vec<f64> = rows
        .iter()
        .filter_map(|r| Some(r.isl_only_rtt_ms? - r.hybrid_rtt_ms?))
        .collect();
    if !gains.is_empty() {
        let max = gains.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let cross = rows.iter().filter(|r| r.hybrid_shells_used > 1).count();
        diag!(
            "max hybrid gain: {max:.1} ms; snapshots using >1 shell: {cross}/{}",
            rows.len()
        );
    }

    let path = results_dir().join("fig10_cross_shell.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&[
        "t_s",
        "isl_only_rtt_ms",
        "hybrid_rtt_ms",
        "shells",
        "bounces",
    ])
    .unwrap();
    for r in rows {
        w.row(&[
            format!("{}", r.t_s),
            r.isl_only_rtt_ms
                .map_or(String::new(), |v| format!("{v:.3}")),
            r.hybrid_rtt_ms.map_or(String::new(), |v| format!("{v:.3}")),
            r.hybrid_shells_used.to_string(),
            r.hybrid_ground_bounces.to_string(),
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig10_cross_shell", &ctx.config);
}
