//! Fig. 8 — attenuation vs exceedance probability along the Delhi–Sydney
//! path. The paper: at 1 % of the time, BP ≈ 5 dB vs ISL ≈ 2.2 dB, a
//! 39 % received-power advantage for ISLs.

use leo_bench::{
    config_with_cities, finish_run, init_run, print_table, results_dir, scale_from_args,
};
use leo_core::experiments::weather::exceedance_curve;
use leo_core::output::CsvWriter;
use leo_core::StudyContext;
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig8_exceedance");
    let ctx = StudyContext::build(config_with_cities(scale, 340));
    let curve = exceedance_curve(&ctx, "Delhi", "Sydney", 0.0)
        .expect("Delhi-Sydney must be routable at t=0");

    let rows: Vec<Vec<String>> = curve
        .p_percent
        .iter()
        .zip(curve.bp_db.iter().zip(&curve.isl_db))
        .map(|(&p, (&b, &i))| {
            let power = |db: f64| 10f64.powf(-db / 10.0) * 100.0;
            vec![
                format!("{p}%"),
                format!("{b:.2}"),
                format!("{i:.2}"),
                format!("{:.0}%", power(b)),
                format!("{:.0}%", power(i)),
            ]
        })
        .collect();
    print_table(
        "Fig 8: Delhi-Sydney worst-link attenuation vs exceedance",
        &["p", "BP dB", "ISL dB", "BP rx power", "ISL rx power"],
        &rows,
    );
    let idx = curve.p_percent.iter().position(|&p| p == 1.0).unwrap();
    diag!(
        "at 1%: BP {:.2} dB vs ISL {:.2} dB (paper: 5 dB vs 2.2 dB)",
        curve.bp_db[idx],
        curve.isl_db[idx]
    );

    let path = results_dir().join("fig8_exceedance.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["p_percent", "bp_db", "isl_db"]).unwrap();
    for i in 0..curve.p_percent.len() {
        w.num_row(&[curve.p_percent[i], curve.bp_db[i], curve.isl_db[i]])
            .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig8_exceedance", &ctx.config);
}
