//! Render the paper's illustration figures as SVG maps into `results/`:
//!
//! * `map_fig1_bp_vs_isl.svg` — Fig. 1: an ISL path (solid) vs the
//!   zig-zag bent-pipe path (dashed) for one pair.
//! * `map_fig3_maceio_durban.svg` — Fig. 3: the Maceió–Durban BP path at
//!   two snapshots, showing the North-Atlantic detour.
//! * `map_fig7_delhi_sydney.svg` — Fig. 7: the BP and ISL paths over the
//!   tropical attenuation heat-map.

use leo_bench::{config_with_cities, finish_run, init_run, results_dir, scale_from_args};
use leo_core::experiments::weather::attenuation_raster;
use leo_core::viz::{draw_snapshot_path, MapCanvas};
use leo_core::{Mode, StudyContext};
use leo_graph::{dijkstra, extract_path};
use leo_util::diag;

fn path_nodes(
    ctx: &StudyContext,
    snap: &leo_core::NetworkSnapshot,
    src: usize,
    dst: usize,
) -> Option<Vec<leo_graph::NodeId>> {
    let _ = ctx;
    let sp = dijkstra(&snap.graph, snap.city_node(src));
    extract_path(&sp, snap.city_node(dst)).map(|p| p.nodes)
}

fn main() {
    let (scale, _) = scale_from_args();
    init_run("render_maps");
    let ctx = StudyContext::build(config_with_cities(scale, 340));
    let dir = results_dir();

    // --- Fig. 1: BP vs ISL for New York -> London ---
    {
        let src = ctx.ground.city_index("New York").unwrap();
        let dst = ctx.ground.city_index("London").unwrap();
        let mut canvas = MapCanvas::new(1200.0);
        canvas.title("Fig 1 style: ISL path (solid) vs bent-pipe path (dashed)");
        let sats = ctx.constellation.positions_at(0.0);
        for (mode, color, dashed) in [
            (Mode::Hybrid, "#b22222", false),
            (Mode::BpOnly, "#1f4e9c", true),
        ] {
            let snap = ctx.snapshot(0.0, mode);
            if let Some(nodes) = path_nodes(&ctx, &snap, src, dst) {
                draw_snapshot_path(&mut canvas, &snap, &sats, &nodes, color, dashed);
            }
        }
        canvas.marker(ctx.ground.cities[src].pos, 4.0, "#222", Some("New York"));
        canvas.marker(ctx.ground.cities[dst].pos, 4.0, "#222", Some("London"));
        let path = dir.join("map_fig1_bp_vs_isl.svg");
        canvas.save(&path).expect("write svg");
        diag!("wrote {}", path.display());
    }

    // --- Fig. 3: Maceió–Durban BP at two snapshots ---
    {
        let src = ctx.ground.city_index("Maceió").unwrap();
        let dst = ctx.ground.city_index("Durban").unwrap();
        let mut canvas = MapCanvas::new(1200.0);
        canvas.title("Fig 3 style: Maceio-Durban BP path at two snapshots (aircraft-dependent)");
        let times = &ctx.config.snapshot_times_s;
        let picks = [times[0], times[times.len() / 2]];
        for (t, color) in picks.iter().zip(["#b22222", "#1f4e9c"]) {
            let snap = ctx.snapshot(*t, Mode::BpOnly);
            let sats = ctx.constellation.positions_at(*t);
            if let Some(nodes) = path_nodes(&ctx, &snap, src, dst) {
                draw_snapshot_path(&mut canvas, &snap, &sats, &nodes, color, false);
            }
        }
        canvas.marker(ctx.ground.cities[src].pos, 4.0, "#222", Some("Maceió"));
        canvas.marker(ctx.ground.cities[dst].pos, 4.0, "#222", Some("Durban"));
        let path = dir.join("map_fig3_maceio_durban.svg");
        canvas.save(&path).expect("write svg");
        diag!("wrote {}", path.display());
    }

    // --- Fig. 7: Delhi–Sydney over the attenuation heat-map ---
    {
        let src = ctx.ground.city_index("Delhi").unwrap();
        let dst = ctx.ground.city_index("Sydney").unwrap();
        let mut canvas = MapCanvas::new(1200.0);
        canvas.title("Fig 7 style: Delhi-Sydney paths over 99.5th-pct attenuation (dB)");
        let raster = attenuation_raster(&ctx, (-45.0, 40.0), (55.0, 165.0), 2.5, 0.5);
        canvas.heatmap(&raster, 2.5);
        let sats = ctx.constellation.positions_at(0.0);
        for (mode, color, dashed) in [
            (Mode::IslOnly, "#b22222", false),
            (Mode::BpOnly, "#1f4e9c", true),
        ] {
            let snap = ctx.snapshot(0.0, mode);
            if let Some(nodes) = path_nodes(&ctx, &snap, src, dst) {
                draw_snapshot_path(&mut canvas, &snap, &sats, &nodes, color, dashed);
            }
        }
        canvas.marker(ctx.ground.cities[src].pos, 4.0, "#222", Some("Delhi"));
        canvas.marker(ctx.ground.cities[dst].pos, 4.0, "#222", Some("Sydney"));
        let path = dir.join("map_fig7_delhi_sydney.svg");
        canvas.save(&path).expect("write svg");
        diag!("wrote {}", path.display());
    }
    finish_run("render_maps", &ctx.config);
}
