//! Ablation — the "lax" one-big-sink max-flow throughput model of prior
//! work (del Portillo et al. 2019) versus the paper's per-pair max-min
//! model. The lax model lets traffic exit anywhere, so it wildly
//! overstates what a network with real source→destination demands can
//! carry — which is why the paper rejects it (§3).

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::throughput::{lax_maxflow_gbps, throughput};
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("ablation_lax_maxflow");
    let ctx = StudyContext::build(scale.config());

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for mode in [Mode::BpOnly, Mode::Hybrid] {
        let strict = throughput(&ctx, 0.0, mode, 4);
        let lax = lax_maxflow_gbps(&ctx, 0.0, mode);
        rows.push(vec![
            format!("{mode:?}"),
            format!("{:.1}", strict.aggregate_gbps),
            format!("{lax:.1}"),
            format!("{:.2}x", lax / strict.aggregate_gbps.max(1e-9)),
        ]);
        csv.push((format!("{mode:?}"), strict.aggregate_gbps, lax));
    }
    print_table(
        "Ablation: per-pair max-min vs lax one-sink max-flow (Gbps)",
        &["mode", "per-pair max-min", "lax max-flow", "overstatement"],
        &rows,
    );

    let path = results_dir().join("ablation_lax_maxflow.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["mode", "strict_gbps", "lax_gbps"]).unwrap();
    for (m, s, l) in csv {
        w.row(&[m, format!("{s:.3}"), format!("{l:.3}")]).unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("ablation_lax_maxflow", &ctx.config);
}
