//! Fig. 5 — Starlink throughput (k = 4) as ISL capacity sweeps from 0.5×
//! to 5× the 20 Gbps GT-link capacity. The paper: even 0.5× yields 2.2×
//! BP's throughput; gains flatten past ~3× under shortest-path routing.

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::throughput::isl_capacity_sweep;
use leo_core::output::CsvWriter;
use leo_core::StudyContext;
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig5_isl_sweep");
    let ctx = StudyContext::build(scale.config());
    let ratios = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0];
    let rows = isl_capacity_sweep(&ctx, 0.0, 4, &ratios);

    let bp = rows[0].1;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(r, g)| {
            vec![
                if r == 0.0 {
                    "BP (no ISL)".into()
                } else {
                    format!("{r}x")
                },
                format!("{g:.1}"),
                format!("{:.2}x", g / bp.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        "Fig 5: Starlink k=4 throughput vs ISL capacity",
        &["ISL capacity", "Gbps", "vs BP"],
        &table,
    );

    let path = results_dir().join("fig5_isl_sweep.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["isl_ratio", "gbps"]).unwrap();
    for (r, g) in rows {
        w.num_row(&[r, g]).unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig5_isl_sweep", &ctx.config);
}
