//! Fig. 6 — CDF across city pairs of the 99.5th-percentile worst-link
//! attenuation, BP vs ISL connectivity. The paper: the median with ISLs
//! is more than 1 dB lower (≈11 % more received power).

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::weather::weather_study;
use leo_core::metrics::Distribution;
use leo_core::output::CsvWriter;
use leo_core::StudyContext;
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig6_attenuation");
    let ctx = StudyContext::build(scale.config());
    diag!(
        "fig6: {} pairs x {} snapshots",
        ctx.pairs.len(),
        ctx.config.snapshot_times_s.len()
    );
    let study = weather_study(&ctx, 7, 0);
    let bp = Distribution::from_samples(&study.bp_db);
    let isl = Distribution::from_samples(&study.isl_db);

    let pcts = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];
    let rows: Vec<Vec<String>> = pcts
        .iter()
        .map(|&p| {
            vec![
                format!("p{p}"),
                format!("{:.2}", bp.percentile(p)),
                format!("{:.2}", isl.percentile(p)),
            ]
        })
        .collect();
    print_table(
        "Fig 6: 99.5th-pct attenuation across pairs (dB)",
        &["pct", "BP", "ISL"],
        &rows,
    );
    let gap = bp.median() - isl.median();
    diag!(
        "median gap: {:.2} dB (paper: >1 dB, i.e. ~{:.0}% received-power difference)",
        gap,
        (1.0 - 10f64.powf(-gap / 10.0)) * 100.0
    );

    let path = results_dir().join("fig6_attenuation.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["series", "attenuation_db", "cdf"]).unwrap();
    for (label, d) in [("bp", &bp), ("isl", &isl)] {
        for (v, f) in d.cdf_points(200) {
            w.row(&[label.to_string(), format!("{v:.4}"), format!("{f:.4}")])
                .unwrap();
        }
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig6_attenuation", &ctx.config);
}
