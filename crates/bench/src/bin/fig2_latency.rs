//! Fig. 2 — minimum RTT (a) and RTT variation (b) CDFs across city pairs,
//! BP vs hybrid, plus the §1/§4 headline summary numbers.
//!
//! Sharded execution (`leo-shard`): `--shards K` partitions the traffic
//! matrix into `K` pair shards, runs each through the same latency fold
//! on a range-restricted context, spills keepers, and merges — the
//! tables and CSV are **byte-identical** to an unsharded run (CI diffs
//! them). Add `--spawn` to fan out over OS processes instead of
//! in-process workers; `--shard i/K --shard-dir D` is the worker half
//! of that protocol (spills one shard, prints nothing to stdout).

use leo_bench::{
    config_with_cities, finish_run, finish_run_with, init_run, print_table, results_dir,
    scale_from_args, shard_cli, shard_dir, shard_label, spawn_shard_workers,
};
use leo_core::experiments::latency::{latency_studies, summarize, PairStats};
use leo_core::metrics::Distribution;
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_shard::codec::read_shard;
use leo_shard::runner::{
    merge_latency_files, run_latency_sharded, shard_file_name, spill_latency_shard,
};
use leo_shard::ShardSpec;
use leo_util::diag;

const LABEL: &str = "fig2_latency";
const MODES: [Mode; 2] = [Mode::BpOnly, Mode::Hybrid];

fn cdf_rows(stats: &[PairStats]) -> (Distribution, Distribution) {
    let mins: Vec<f64> = stats.iter().filter_map(|s| s.min_rtt_ms).collect();
    let vars: Vec<f64> = stats.iter().filter_map(PairStats::variation_ms).collect();
    (
        Distribution::from_samples(&mins),
        Distribution::from_samples(&vars),
    )
}

/// Worker half of the `--spawn` protocol: fold one shard, spill it,
/// record the run log, say nothing on stdout.
fn run_worker(cfg: &leo_core::StudyConfig, spec: ShardSpec, dir: &std::path::Path) {
    let label = shard_label(LABEL, spec);
    init_run(&label);
    let path = spill_latency_shard(cfg, &MODES, spec, 0, dir, LABEL).unwrap_or_else(|e| {
        eprintln!("fig2 shard {spec}: {e}");
        std::process::exit(1);
    });
    let (header, _) = read_shard(&path).unwrap_or_else(|e| {
        eprintln!("fig2 shard {spec}: re-reading spill: {e}");
        std::process::exit(1);
    });
    finish_run_with(
        &label,
        cfg,
        &[
            ("shard", spec.to_string()),
            ("pair_lo", header.pair_lo.to_string()),
            ("pair_hi", header.pair_hi.to_string()),
            ("shard_file", path.display().to_string()),
        ],
    );
}

fn main() {
    let (scale, rest) = scale_from_args();
    let cli = shard_cli(rest);
    let cfg = config_with_cities(scale, 340);

    if let Some(spec) = cli.worker {
        run_worker(&cfg, spec, &shard_dir(&cli));
        return;
    }

    init_run(LABEL);
    let ctx = StudyContext::build(cfg.clone());
    diag!(
        "fig2: {} cities, {} pairs, {} snapshots, {} relays",
        ctx.ground.cities.len(),
        ctx.pairs.len(),
        ctx.config.snapshot_times_s.len(),
        ctx.ground.relays.len()
    );

    let mut extras: Vec<(&str, String)> = Vec::new();
    let mut studies = if cli.shards > 0 {
        let dir = shard_dir(&cli);
        let (run, keepers) = if cli.spawn {
            spawn_shard_workers(scale, cli.shards, &dir, &[]).unwrap_or_else(|e| {
                eprintln!("fig2: {e}");
                std::process::exit(1);
            });
            let files: Vec<_> = ShardSpec::all(cli.shards)
                .into_iter()
                .map(|s| dir.join(shard_file_name(LABEL, s)))
                .collect();
            merge_latency_files(&files).unwrap_or_else(|e| {
                eprintln!("fig2: merging worker spills: {e}");
                std::process::exit(1);
            })
        } else {
            let (run, keepers, _files) = run_latency_sharded(&cfg, &MODES, cli.shards, &dir, LABEL)
                .unwrap_or_else(|e| {
                    eprintln!("fig2: sharded run: {e}");
                    std::process::exit(1);
                });
            (run, keepers)
        };
        assert_eq!(
            run.n_pairs as usize,
            ctx.pairs.len(),
            "merged shards cover a different traffic matrix than this config"
        );
        extras.push(("shards", run.shard_count.to_string()));
        extras.push(("spawned", cli.spawn.to_string()));
        keepers.to_stats(&ctx.pairs).unwrap_or_else(|e| {
            eprintln!("fig2: {e}");
            std::process::exit(1);
        })
    } else {
        // One shared orbit/visibility pass per snapshot covers both modes.
        latency_studies(&ctx, &MODES, 0)
    };

    let hy = studies.pop().expect("hybrid study");
    let bp = studies.pop().expect("bp study");
    let (bp_min, bp_var) = cdf_rows(&bp);
    let (hy_min, hy_var) = cdf_rows(&hy);

    // Fig. 2(a): minimum RTT distribution.
    let pcts = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
    let rows: Vec<Vec<String>> = pcts
        .iter()
        .map(|&p| {
            vec![
                format!("p{p}"),
                format!("{:.1}", bp_min.percentile(p)),
                format!("{:.1}", hy_min.percentile(p)),
            ]
        })
        .collect();
    print_table(
        "Fig 2(a): min RTT across pairs (ms)",
        &["pct", "BP", "hybrid"],
        &rows,
    );

    // Fig. 2(b): RTT variation distribution.
    let rows: Vec<Vec<String>> = pcts
        .iter()
        .map(|&p| {
            vec![
                format!("p{p}"),
                format!("{:.1}", bp_var.percentile(p)),
                format!("{:.1}", hy_var.percentile(p)),
            ]
        })
        .collect();
    print_table(
        "Fig 2(b): RTT variation max-min across pairs (ms)",
        &["pct", "BP", "hybrid"],
        &rows,
    );

    let s = summarize(&bp, &hy);
    let inflation = |b: f64, h: f64| {
        if h > 0.0 {
            format!("{:.0}%", (b / h - 1.0) * 100.0)
        } else {
            "inf".into()
        }
    };
    print_table(
        "Summary (paper: median +80%, p95 +422%, max min-RTT gap 57 ms)",
        &["metric", "BP", "hybrid", "BP inflation"],
        &[
            vec![
                "median variation (ms)".into(),
                format!("{:.1}", s.bp_median_variation_ms),
                format!("{:.1}", s.hybrid_median_variation_ms),
                inflation(s.bp_median_variation_ms, s.hybrid_median_variation_ms),
            ],
            vec![
                "p95 variation (ms)".into(),
                format!("{:.1}", s.bp_p95_variation_ms),
                format!("{:.1}", s.hybrid_p95_variation_ms),
                inflation(s.bp_p95_variation_ms, s.hybrid_p95_variation_ms),
            ],
            vec![
                "max variation (ms)".into(),
                format!("{:.1}", s.bp_max_variation_ms),
                format!("{:.1}", s.hybrid_max_variation_ms),
                String::new(),
            ],
            vec![
                "max min-RTT gap (ms)".into(),
                format!("{:.1}", s.max_min_rtt_gap_ms),
                String::new(),
                String::new(),
            ],
        ],
    );

    // CSV dump of the full CDFs.
    let path = results_dir().join("fig2_latency.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["series", "value_ms", "cdf"]).unwrap();
    for (label, dist) in [
        ("bp_min", &bp_min),
        ("hybrid_min", &hy_min),
        ("bp_var", &bp_var),
        ("hybrid_var", &hy_var),
    ] {
        for (v, f) in dist.cdf_points(200) {
            w.row(&[label.to_string(), format!("{v:.3}"), format!("{f:.4}")])
                .unwrap();
        }
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    if extras.is_empty() {
        finish_run(LABEL, &ctx.config);
    } else {
        finish_run_with(LABEL, &ctx.config, &extras);
    }
}
