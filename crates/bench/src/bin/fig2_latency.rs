//! Fig. 2 — minimum RTT (a) and RTT variation (b) CDFs across city pairs,
//! BP vs hybrid, plus the §1/§4 headline summary numbers.

use leo_bench::{
    config_with_cities, finish_run, init_run, print_table, results_dir, scale_from_args,
};
use leo_core::experiments::latency::{latency_studies, summarize, PairStats};
use leo_core::metrics::Distribution;
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_util::diag;

fn cdf_rows(stats: &[PairStats]) -> (Distribution, Distribution) {
    let mins: Vec<f64> = stats.iter().filter_map(|s| s.min_rtt_ms).collect();
    let vars: Vec<f64> = stats.iter().filter_map(PairStats::variation_ms).collect();
    (
        Distribution::from_samples(&mins),
        Distribution::from_samples(&vars),
    )
}

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig2_latency");
    let ctx = StudyContext::build(config_with_cities(scale, 340));
    diag!(
        "fig2: {} cities, {} pairs, {} snapshots, {} relays",
        ctx.ground.cities.len(),
        ctx.pairs.len(),
        ctx.config.snapshot_times_s.len(),
        ctx.ground.relays.len()
    );

    // One shared orbit/visibility pass per snapshot covers both modes.
    let mut studies = latency_studies(&ctx, &[Mode::BpOnly, Mode::Hybrid], 0);
    let hy = studies.pop().expect("hybrid study");
    let bp = studies.pop().expect("bp study");
    let (bp_min, bp_var) = cdf_rows(&bp);
    let (hy_min, hy_var) = cdf_rows(&hy);

    // Fig. 2(a): minimum RTT distribution.
    let pcts = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
    let rows: Vec<Vec<String>> = pcts
        .iter()
        .map(|&p| {
            vec![
                format!("p{p}"),
                format!("{:.1}", bp_min.percentile(p)),
                format!("{:.1}", hy_min.percentile(p)),
            ]
        })
        .collect();
    print_table(
        "Fig 2(a): min RTT across pairs (ms)",
        &["pct", "BP", "hybrid"],
        &rows,
    );

    // Fig. 2(b): RTT variation distribution.
    let rows: Vec<Vec<String>> = pcts
        .iter()
        .map(|&p| {
            vec![
                format!("p{p}"),
                format!("{:.1}", bp_var.percentile(p)),
                format!("{:.1}", hy_var.percentile(p)),
            ]
        })
        .collect();
    print_table(
        "Fig 2(b): RTT variation max-min across pairs (ms)",
        &["pct", "BP", "hybrid"],
        &rows,
    );

    let s = summarize(&bp, &hy);
    let inflation = |b: f64, h: f64| {
        if h > 0.0 {
            format!("{:.0}%", (b / h - 1.0) * 100.0)
        } else {
            "inf".into()
        }
    };
    print_table(
        "Summary (paper: median +80%, p95 +422%, max min-RTT gap 57 ms)",
        &["metric", "BP", "hybrid", "BP inflation"],
        &[
            vec![
                "median variation (ms)".into(),
                format!("{:.1}", s.bp_median_variation_ms),
                format!("{:.1}", s.hybrid_median_variation_ms),
                inflation(s.bp_median_variation_ms, s.hybrid_median_variation_ms),
            ],
            vec![
                "p95 variation (ms)".into(),
                format!("{:.1}", s.bp_p95_variation_ms),
                format!("{:.1}", s.hybrid_p95_variation_ms),
                inflation(s.bp_p95_variation_ms, s.hybrid_p95_variation_ms),
            ],
            vec![
                "max variation (ms)".into(),
                format!("{:.1}", s.bp_max_variation_ms),
                format!("{:.1}", s.hybrid_max_variation_ms),
                String::new(),
            ],
            vec![
                "max min-RTT gap (ms)".into(),
                format!("{:.1}", s.max_min_rtt_gap_ms),
                String::new(),
                String::new(),
            ],
        ],
    );

    // CSV dump of the full CDFs.
    let path = results_dir().join("fig2_latency.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["series", "value_ms", "cdf"]).unwrap();
    for (label, dist) in [
        ("bp_min", &bp_min),
        ("hybrid_min", &hy_min),
        ("bp_var", &bp_var),
        ("hybrid_var", &hy_var),
    ] {
        for (v, f) in dist.cdf_points(200) {
            w.row(&[label.to_string(), format!("{v:.3}"), format!("{f:.4}")])
                .unwrap();
        }
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig2_latency", &ctx.config);
}
