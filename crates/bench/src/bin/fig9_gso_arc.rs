//! Fig. 9 — GSO-arc avoidance: the fraction of sky and of visible
//! satellites that remain usable, swept over GT latitude (Starlink's 22°
//! separation, 40° full-deployment minimum elevation).

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::gso_arc::gso_sweep;
use leo_core::output::CsvWriter;
use leo_core::StudyContext;
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig9_gso_arc");
    let ctx = StudyContext::build(scale.config());
    let lats: Vec<f64> = (0..=60).step_by(5).map(|l| l as f64).collect();
    let rows = gso_sweep(&ctx, &lats, 40.0, 22.0, 0.0);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.lat_deg),
                format!("{:.1}%", r.usable_sky_fraction * 100.0),
                if r.usable_satellite_fraction.is_nan() {
                    "-".into()
                } else {
                    format!("{:.1}%", r.usable_satellite_fraction * 100.0)
                },
            ]
        })
        .collect();
    print_table(
        "Fig 9: GSO-arc avoidance vs latitude (e=40deg, 22deg separation)",
        &["lat", "usable sky", "usable visible sats"],
        &table,
    );
    diag!(
        "at the Equator only small elevation regions remain usable; \
         mid-latitudes are barely affected — BP's cross-Equatorial relays all sit in the constrained band"
    );

    let path = results_dir().join("fig9_gso_arc.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&[
        "lat_deg",
        "usable_sky_fraction",
        "usable_satellite_fraction",
    ])
    .unwrap();
    for r in rows {
        w.num_row(&[
            r.lat_deg,
            r.usable_sky_fraction,
            r.usable_satellite_fraction,
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig9_gso_arc", &ctx.config);
}
