//! Extension — packet-level queueing on BP vs hybrid paths: end-to-end
//! delay, p99, jitter, and loss of a 10 Mbit/s flow over each path's
//! per-beam links under increasing cross-traffic load. The paper's §4
//! QoE point, made concrete with `leo-packetsim`.

use leo_bench::{
    config_with_cities, finish_run, init_run, print_table, results_dir, scale_from_args,
};
use leo_core::experiments::packet_delay::packet_delay_study;
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("ext_packet_delay");
    let ctx = StudyContext::build(config_with_cities(scale, 340));
    let (src, dst) = ("New York", "London");
    let loads = [0.3, 0.6, 0.8, 0.95];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for mode in [Mode::BpOnly, Mode::Hybrid] {
        for &load in &loads {
            match packet_delay_study(&ctx, src, dst, 0.0, mode, load, 1.0) {
                Some(r) => {
                    rows.push(vec![
                        format!("{mode:?}"),
                        format!("{:.0}%", load * 100.0),
                        r.hops.to_string(),
                        format!("{:.2}", r.mean_delay_ms),
                        format!("{:.2}", r.p99_delay_ms),
                        format!("{:.3}", r.jitter_ms),
                        format!("{:.2}%", (1.0 - r.delivery_ratio) * 100.0),
                    ]);
                    csv.push(r);
                }
                None => rows.push(vec![format!("{mode:?}"), "unreachable".into()]),
            }
        }
    }
    print_table(
        &format!("Packet-level {src} -> {dst} (10 Mbit/s flow, per-beam links)"),
        &[
            "mode",
            "load",
            "hops",
            "mean (ms)",
            "p99 (ms)",
            "jitter (ms)",
            "loss",
        ],
        &rows,
    );
    diag!("BP's longer store-and-forward chains accumulate more queueing variance (§4 QoE)");

    let path = results_dir().join("ext_packet_delay.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&[
        "mode",
        "load",
        "hops",
        "mean_ms",
        "p99_ms",
        "jitter_ms",
        "delivery",
    ])
    .unwrap();
    for r in csv {
        w.row(&[
            format!("{:?}", r.mode),
            format!("{:.2}", r.load),
            r.hops.to_string(),
            format!("{:.4}", r.mean_delay_ms),
            format!("{:.4}", r.p99_delay_ms),
            format!("{:.5}", r.jitter_ms),
            format!("{:.5}", r.delivery_ratio),
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("ext_packet_delay", &ctx.config);
}
