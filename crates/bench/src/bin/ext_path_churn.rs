//! Extension — path churn and contact windows: the dynamics underneath
//! Fig. 2(b). Reports how often shortest paths change between snapshots
//! (BP vs hybrid) and the Starlink pass-duration statistics behind the
//! paper's "each satellite is reachable for a few minutes" (§2).

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::churn::churn_study;
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_geo::GeoPoint;
use leo_orbit::{find_passes, pass_stats};
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("ext_path_churn");
    let ctx = StudyContext::build(scale.config());

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for mode in [Mode::BpOnly, Mode::Hybrid] {
        let s = churn_study(&ctx, mode, 0);
        rows.push(vec![
            format!("{mode:?}"),
            format!("{:.1}%", s.path_change_fraction * 100.0),
            format!("{:.2}", s.mean_jump_ms),
            format!("{:.2}", s.max_jump_ms),
            s.transitions.to_string(),
        ]);
        results.push((mode, s));
    }
    print_table(
        "Path churn across snapshots",
        &[
            "mode",
            "paths changed",
            "mean |dRTT| (ms)",
            "max |dRTT| (ms)",
            "transitions",
        ],
        &rows,
    );

    // Contact windows: why paths churn at all.
    let gt = GeoPoint::from_degrees(40.7, -74.0);
    let passes = find_passes(&ctx.constellation, gt, 0.0, 4.0 * 3600.0, 15.0);
    let st = pass_stats(&passes, 0.0, 4.0 * 3600.0);
    diag!(
        "Starlink passes over New York (4 h scan): {} passes, mean {:.1} min, max {:.1} min",
        st.count,
        st.mean_duration_s / 60.0,
        st.max_duration_s / 60.0
    );
    diag!("paper §2: \"each satellite is reachable from a GT for a few minutes\"");

    let path = results_dir().join("ext_path_churn.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["mode", "change_fraction", "mean_jump_ms", "max_jump_ms"])
        .unwrap();
    for (m, s) in results {
        w.row(&[
            format!("{m:?}"),
            format!("{:.4}", s.path_change_fraction),
            format!("{:.3}", s.mean_jump_ms),
            format!("{:.3}", s.max_jump_ms),
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("ext_path_churn", &ctx.config);
}
