//! Committed perf baseline: times the two headline pipelines (fig. 2
//! latency study, fig. 4 throughput) at Tiny scale and writes
//! `BENCH_seed.json` (label `seed`) into `LEO_BENCH_DIR` or the cwd.
//!
//! The JSON-lines file is committed to the repo; future PRs re-run this
//! bin under a new label and diff medians against the `seed` baseline,
//! so the perf trajectory lives in git history rather than a dashboard.
//!
//! Run: `cargo run -p leo-bench --release --bin bench_baseline`

use leo_bench::{finish_run, init_run};
use leo_core::experiments::latency::latency_study;
use leo_core::experiments::throughput::throughput;
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_util::bench::Harness;

fn main() {
    init_run("bench_baseline");
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let mut h = Harness::new("seed");
    h.bench("fig2_latency_study_tiny", || {
        let bp = latency_study(&ctx, Mode::BpOnly, 0);
        let hy = latency_study(&ctx, Mode::Hybrid, 0);
        (bp, hy)
    });
    h.bench("fig4_throughput_tiny", || {
        let bp = throughput(&ctx, 0.0, Mode::BpOnly, 1);
        let hy = throughput(&ctx, 0.0, Mode::Hybrid, 1);
        (bp, hy)
    });
    h.finish().expect("write BENCH_seed.json");
    finish_run("bench_baseline", &ctx.config);
}
