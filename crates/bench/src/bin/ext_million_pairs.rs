//! `ext_million_pairs` — the out-of-core scale harness: a
//! 1,000,000-pair latency sweep that no single process could hold
//! comfortably, executed as `K` pair-sharded OS workers with bounded
//! memory, then merged bit-exactly from the spill files.
//!
//! The acceptance contract this harness *asserts* (exit 1 on failure):
//! every worker's manifest-recorded `peak_rss_kb` stays at or below the
//! budget (default 512 MiB, `--max-worker-rss-mb` to override), and the
//! merged run covers every sampled pair exactly once.
//!
//! Usage:
//! `ext_million_pairs [--pairs N] [--cities N] [--snapshots S]`
//! `                  [--workers K] [--max-worker-rss-mb M]`
//!
//! (`--shard i/K --shard-dir D --threads T` is the internal worker
//! protocol — the coordinator re-invokes itself with those.)

use leo_bench::{finish_run_with, init_run, print_table, results_dir, shard_label};
use leo_core::{ConstellationKind, Mode, NetworkConfig, StudyConfig};
use leo_shard::runner::{merge_latency_files, shard_file_name, spill_latency_shard};
use leo_shard::ShardSpec;
use leo_util::diag;
use leo_util::telemetry::Json;
use std::path::{Path, PathBuf};

const LABEL: &str = "ext_million_pairs";
const MODES: [Mode; 1] = [Mode::BpOnly];

struct Args {
    pairs: usize,
    cities: usize,
    snapshots: usize,
    workers: usize,
    max_worker_rss_mb: u64,
    threads: usize,
    worker: Option<ShardSpec>,
    dir: Option<PathBuf>,
}

fn usage(msg: &str) -> ! {
    eprintln!("{LABEL}: {msg}");
    eprintln!(
        "usage: {LABEL} [--pairs N] [--cities N] [--snapshots S] [--workers K] [--max-worker-rss-mb M]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        pairs: 1_000_000,
        cities: 4_000,
        snapshots: 2,
        workers: 4,
        max_worker_rss_mb: 512,
        threads: 0,
        worker: None,
        dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> usize {
            let v = it.next().unwrap_or_default();
            v.parse::<usize>()
                .unwrap_or_else(|_| usage(&format!("{name} needs a number, got '{v}'")))
        };
        match a.as_str() {
            "--pairs" => args.pairs = num("--pairs"),
            "--cities" => args.cities = num("--cities"),
            "--snapshots" => args.snapshots = num("--snapshots").max(1),
            "--workers" => args.workers = num("--workers").max(1),
            "--max-worker-rss-mb" => args.max_worker_rss_mb = num("--max-worker-rss-mb") as u64,
            "--threads" => args.threads = num("--threads"),
            "--shard" => {
                let v = it.next().unwrap_or_default();
                args.worker =
                    Some(ShardSpec::parse(&v).unwrap_or_else(|e| usage(&format!("--shard: {e}"))));
            }
            "--shard-dir" => {
                let v = it.next().unwrap_or_default();
                args.dir = Some(PathBuf::from(v));
            }
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    if args.cities < 2 {
        usage("--cities must be at least 2");
    }
    args
}

/// The study config: Starlink, BP-only, no relay grid (this harness
/// stresses the pair dimension, not the relay machinery).
fn build_config(a: &Args) -> StudyConfig {
    StudyConfig {
        constellation: ConstellationKind::Starlink,
        network: NetworkConfig::default(),
        num_cities: a.cities,
        num_pairs: a.pairs,
        min_pair_distance_m: 2_000_000.0,
        relay_grid_deg: None,
        relay_radius_m: 2_000_000.0,
        // The schedule requires a positive density; BP-only folds never
        // read it, so keep the tiny-scale baseline.
        flight_density: 0.5,
        snapshot_times_s: StudyConfig::day_snapshots(a.snapshots),
        seed: 42,
    }
}

/// Worker: fold one shard, spill, record the manifest (the coordinator
/// reads `peak_rss_kb` out of it), print nothing to stdout.
fn run_worker(a: &Args, spec: ShardSpec, dir: &Path) {
    let label = shard_label(LABEL, spec);
    init_run(&label);
    let cfg = build_config(a);
    let path = spill_latency_shard(&cfg, &MODES, spec, a.threads, dir, LABEL).unwrap_or_else(|e| {
        eprintln!("{LABEL} shard {spec}: {e}");
        std::process::exit(1);
    });
    let (header, _) = leo_shard::codec::read_shard(&path).unwrap_or_else(|e| {
        eprintln!("{LABEL} shard {spec}: re-reading spill: {e}");
        std::process::exit(1);
    });
    finish_run_with(
        &label,
        &cfg,
        &[
            ("shard", spec.to_string()),
            ("pair_lo", header.pair_lo.to_string()),
            ("pair_hi", header.pair_hi.to_string()),
        ],
    );
}

/// Read `peak_rss_kb` (and the shard's pair range) from a worker's run
/// log manifest.
fn worker_manifest(dir: &Path, spec: ShardSpec) -> Result<(u64, u64, u64), String> {
    let path = dir.join(format!("RUN_{}.jsonl", shard_label(LABEL, spec)));
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read {}: {e} (did the worker run with logging?)",
            path.display()
        )
    })?;
    let last = text
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{}: empty run log", path.display()))?;
    let manifest =
        Json::parse(last).map_err(|e| format!("{}: manifest parse: {e}", path.display()))?;
    // Manifest extras are written as JSON strings; core fields as
    // numbers. Accept either.
    let num = |key: &str| -> Result<u64, String> {
        let v = manifest
            .get(key)
            .ok_or_else(|| format!("{}: manifest missing `{key}`", path.display()))?;
        v.as_num()
            .map(|n| n as u64)
            .or_else(|| v.as_str().and_then(|s| s.parse::<u64>().ok()))
            .ok_or_else(|| format!("{}: manifest `{key}` is not a number", path.display()))
    };
    Ok((num("peak_rss_kb")?, num("pair_lo")?, num("pair_hi")?))
}

fn main() {
    let a = parse_args();
    let default_dir = || results_dir().join("shards").join(LABEL);
    if let Some(spec) = a.worker {
        let dir = a.dir.clone().unwrap_or_else(default_dir);
        run_worker(&a, spec, &dir);
        return;
    }

    init_run(LABEL);
    let dir = a.dir.clone().unwrap_or_else(default_dir);
    // Scratch dir owned by this run: stale spills or worker logs from a
    // previous invocation must not be merged by mistake.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        eprintln!("{LABEL}: create {}: {e}", dir.display());
        std::process::exit(1);
    });

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads_per_worker = (cores / a.workers).max(1);
    diag!(
        "{LABEL}: {} pairs over {} cities, {} snapshots, {} workers x {} threads, rss budget {} MiB",
        a.pairs,
        a.cities,
        a.snapshots,
        a.workers,
        threads_per_worker,
        a.max_worker_rss_mb
    );

    // Spawn the workers. Logging is forced on: the RSS assertion reads
    // each worker's manifest, so a silent worker is a failed worker.
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("{LABEL}: current_exe: {e}");
        std::process::exit(1);
    });
    let specs = ShardSpec::all(a.workers);
    let mut children = Vec::with_capacity(a.workers);
    for &spec in &specs {
        let child = std::process::Command::new(&exe)
            .args(["--pairs", &a.pairs.to_string()])
            .args(["--cities", &a.cities.to_string()])
            .args(["--snapshots", &a.snapshots.to_string()])
            .args(["--threads", &threads_per_worker.to_string()])
            .args(["--shard", &spec.to_string()])
            .arg("--shard-dir")
            .arg(&dir)
            .env("LEO_LOG", "info")
            .env("LEO_LOG_DIR", &dir)
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("{LABEL}: spawn worker {spec}: {e}");
                std::process::exit(1);
            });
        children.push((spec, child));
    }
    for (spec, mut child) in children {
        let status = child.wait().unwrap_or_else(|e| {
            eprintln!("{LABEL}: wait for worker {spec}: {e}");
            std::process::exit(1);
        });
        if !status.success() {
            eprintln!("{LABEL}: worker {spec} exited with {status}");
            std::process::exit(1);
        }
    }

    // Merge the spill files into the full run.
    let files: Vec<PathBuf> = specs
        .iter()
        .map(|&s| dir.join(shard_file_name(LABEL, s)))
        .collect();
    let (run, keepers) = merge_latency_files(&files).unwrap_or_else(|e| {
        eprintln!("{LABEL}: merge: {e}");
        std::process::exit(1);
    });

    // Per-worker accounting + the RSS assertion.
    let budget_kb = a.max_worker_rss_mb * 1024;
    let mut rows = Vec::new();
    let mut over_budget = false;
    for &spec in &specs {
        let (rss_kb, lo, hi) = worker_manifest(&dir, spec).unwrap_or_else(|e| {
            eprintln!("{LABEL}: {e}");
            std::process::exit(1);
        });
        let ok = rss_kb <= budget_kb;
        over_budget |= !ok;
        rows.push(vec![
            spec.to_string(),
            format!("{lo}..{hi}"),
            (hi - lo).to_string(),
            format!("{:.1}", rss_kb as f64 / 1024.0),
            if ok {
                "ok".into()
            } else {
                "OVER BUDGET".into()
            },
        ]);
    }
    print_table(
        &format!(
            "{LABEL}: worker peak RSS (budget {} MiB)",
            a.max_worker_rss_mb
        ),
        &["worker", "pair range", "pairs", "peak RSS (MiB)", "status"],
        &rows,
    );

    // Merged-run summary from the keeper aggregates (no per-pair scan).
    let m = &keepers.modes[0];
    let sketch = &m.min_rtt_sketch;
    let reachable_pairs = sketch.count();
    print_table(
        &format!("{LABEL}: merged run"),
        &["metric", "value"],
        &[
            vec!["pairs".into(), run.n_pairs.to_string()],
            vec!["shards".into(), run.shard_count.to_string()],
            vec!["snapshots".into(), keepers.total.to_string()],
            vec!["pairs ever reachable".into(), reachable_pairs.to_string()],
            vec![
                "min RTT p50 (ms)".into(),
                format!("{:.1}", sketch.quantile(0.50)),
            ],
            vec![
                "min RTT p95 (ms)".into(),
                format!("{:.1}", sketch.quantile(0.95)),
            ],
            vec![
                "min RTT mean (ms)".into(),
                format!("{:.1}", sketch.sum() / reachable_pairs.max(1) as f64),
            ],
        ],
    );

    let cfg = build_config(&a);
    assert_eq!(
        run.config_hash,
        leo_shard::runner::config_hash(&cfg),
        "merged shards were produced under a different config"
    );
    finish_run_with(
        LABEL,
        &cfg,
        &[
            ("workers", a.workers.to_string()),
            ("merged_pairs", run.n_pairs.to_string()),
            ("rss_budget_kb", budget_kb.to_string()),
        ],
    );
    if over_budget {
        eprintln!("{LABEL}: at least one worker exceeded the RSS budget");
        std::process::exit(1);
    }
}
