//! Fig. 3 — the Maceió–Durban BP path changes drastically with aircraft
//! availability over the sparse South Atlantic, inflating its RTT by up
//! to ~100 ms while congesting the busy North Atlantic corridor.

use leo_bench::{
    config_with_cities, finish_run, init_run, print_table, results_dir, scale_from_args,
};
use leo_core::experiments::latency::pair_timeseries;
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("fig3_path_variability");
    let ctx = StudyContext::build(config_with_cities(scale, 340));
    let (src, dst) = ("Maceió", "Durban");

    let bp = pair_timeseries(&ctx, src, dst, Mode::BpOnly, 0);
    let hy = pair_timeseries(&ctx, src, dst, Mode::Hybrid, 0);

    let rows: Vec<Vec<String>> = bp
        .iter()
        .zip(&hy)
        .map(|(b, h)| {
            vec![
                format!("{:>6.0}", b.t_s),
                b.rtt_ms.map_or("-".into(), |r| format!("{r:.1}")),
                format!("{}", b.hops),
                format!("{}", b.aircraft_hops),
                format!("{}", b.relay_hops),
                h.rtt_ms.map_or("-".into(), |r| format!("{r:.1}")),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 3: {src} -> {dst} over the day"),
        &[
            "t(s)",
            "BP RTT(ms)",
            "hops",
            "aircraft",
            "relays",
            "hybrid RTT(ms)",
        ],
        &rows,
    );

    let bp_rtts: Vec<f64> = bp.iter().filter_map(|p| p.rtt_ms).collect();
    let hy_rtts: Vec<f64> = hy.iter().filter_map(|p| p.rtt_ms).collect();
    let range = |v: &[f64]| {
        if v.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (
                v.iter().copied().fold(f64::INFINITY, f64::min),
                v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        }
    };
    let (bmin, bmax) = range(&bp_rtts);
    let (hmin, hmax) = range(&hy_rtts);
    diag!(
        "BP RTT range {:.1}-{:.1} ms (inflation {:.1} ms; paper: ~100 ms) | hybrid {:.1}-{:.1} ms ({:.1} ms)",
        bmin, bmax, bmax - bmin, hmin, hmax, hmax - hmin,
    );

    let path = results_dir().join("fig3_maceio_durban.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&[
        "t_s",
        "bp_rtt_ms",
        "bp_hops",
        "bp_aircraft",
        "bp_relays",
        "hybrid_rtt_ms",
    ])
    .unwrap();
    for (b, h) in bp.iter().zip(&hy) {
        w.row(&[
            format!("{}", b.t_s),
            b.rtt_ms.map_or(String::new(), |r| format!("{r:.3}")),
            format!("{}", b.hops),
            format!("{}", b.aircraft_hops),
            format!("{}", b.relay_hops),
            h.rtt_ms.map_or(String::new(), |r| format!("{r:.3}")),
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig3_path_variability", &ctx.config);
}
