//! Fig. 4 — aggregate max-min-fair throughput for {Starlink, Kuiper} ×
//! {BP, hybrid} × {k=1, k=4}, plus the §5 disconnected-satellite
//! statistic (pass `--disconnected`).
//!
//! Sharded execution (`leo-shard`): routing is per-pair independent, so
//! `--shards K` routes each pair shard in a range-restricted context,
//! spills the per-pair path sets (one file per constellation per
//! shard), and re-solves the *global* max-min allocation from the
//! merged path list — byte-identical tables and CSV. `--spawn` fans
//! out over OS processes; `--shard i/K --shard-dir D` is the worker
//! half of that protocol.

use leo_bench::{
    finish_run, finish_run_with, init_run, print_table, results_dir, scale_from_args, shard_cli,
    shard_dir, shard_label, spawn_shard_workers,
};
use leo_core::experiments::throughput::{
    disconnected_satellite_fraction, throughput, throughput_from_path_edges, ThroughputResult,
};
use leo_core::output::CsvWriter;
use leo_core::{ConstellationKind, ExperimentScale, Mode, StudyContext};
use leo_flow::FlowWorkspace;
use leo_shard::runner::{merge_flow_files, run_flow_sharded, shard_file_name, spill_flow_shard};
use leo_shard::{FlowPathsKeepers, ShardSpec};
use leo_util::diag;

const LABEL: &str = "fig4_throughput";
const KINDS: [ConstellationKind; 2] = [ConstellationKind::Starlink, ConstellationKind::Kuiper];
const COMBOS: [(Mode, usize); 4] = [
    (Mode::BpOnly, 1),
    (Mode::BpOnly, 4),
    (Mode::Hybrid, 1),
    (Mode::Hybrid, 4),
];
const T_S: f64 = 0.0;

fn kind_config(scale: ExperimentScale, kind: ConstellationKind) -> leo_core::StudyConfig {
    let mut cfg = scale.config();
    cfg.constellation = kind;
    cfg
}

fn kind_label(kind: ConstellationKind) -> String {
    format!("{LABEL}.{kind:?}")
}

/// Worker: route this shard's pairs for every constellation and combo,
/// spilling one file per constellation. Stdout stays silent.
fn run_worker(scale: ExperimentScale, spec: ShardSpec, dir: &std::path::Path) {
    let label = shard_label(LABEL, spec);
    init_run(&label);
    let mut extras: Vec<(&str, String)> = vec![("shard", spec.to_string())];
    for kind in KINDS {
        let cfg = kind_config(scale, kind);
        let path = spill_flow_shard(&cfg, T_S, &COMBOS, spec, dir, &kind_label(kind))
            .unwrap_or_else(|e| {
                eprintln!("fig4 shard {spec} ({kind:?}): {e}");
                std::process::exit(1);
            });
        diag!("fig4 shard {spec}: spilled {}", path.display());
    }
    extras.push(("kinds", format!("{KINDS:?}")));
    finish_run_with(&label, &kind_config(scale, KINDS[0]), &extras);
}

/// Merged per-constellation path sets, keyed off the combo order.
fn sharded_paths(
    scale: ExperimentScale,
    kind: ConstellationKind,
    cli: &leo_bench::ShardCli,
) -> FlowPathsKeepers {
    let dir = shard_dir(cli);
    let cfg = kind_config(scale, kind);
    let (run, merged) = if cli.spawn {
        let files: Vec<_> = ShardSpec::all(cli.shards)
            .into_iter()
            .map(|s| dir.join(shard_file_name(&kind_label(kind), s)))
            .collect();
        merge_flow_files(&files).unwrap_or_else(|e| {
            eprintln!("fig4 ({kind:?}): merging worker spills: {e}");
            std::process::exit(1);
        })
    } else {
        let (run, merged, _files) =
            run_flow_sharded(&cfg, T_S, &COMBOS, cli.shards, &dir, &kind_label(kind))
                .unwrap_or_else(|e| {
                    eprintln!("fig4 ({kind:?}): sharded run: {e}");
                    std::process::exit(1);
                });
        (run, merged)
    };
    assert_eq!(
        run.config_hash,
        leo_shard::runner::config_hash(&cfg),
        "merged shards were produced under a different config"
    );
    merged
}

fn main() {
    let (scale, rest) = scale_from_args();
    let cli = shard_cli(rest);

    if let Some(spec) = cli.worker {
        run_worker(scale, spec, &shard_dir(&cli));
        return;
    }

    init_run(LABEL);
    let want_disconnected = cli.rest.iter().any(|a| a == "--disconnected");

    if cli.shards > 0 && cli.spawn {
        let dir = shard_dir(&cli);
        if let Err(e) = spawn_shard_workers(scale, cli.shards, &dir, &[]) {
            eprintln!("fig4: {e}");
            std::process::exit(1);
        }
    }

    let mut rows = Vec::new();
    let mut csv_rows: Vec<(String, String, usize, f64)> = Vec::new();
    for kind in KINDS {
        let cfg = kind_config(scale, kind);
        let ctx = StudyContext::build(cfg);
        diag!(
            "fig4: {:?}: {} sats, {} pairs, {} relays",
            kind,
            ctx.num_satellites(),
            ctx.pairs.len(),
            ctx.ground.relays.len()
        );
        let merged = (cli.shards > 0).then(|| sharded_paths(scale, kind, &cli));
        let mut per_kind: Vec<f64> = Vec::new();
        for (ci, &(mode, k)) in COMBOS.iter().enumerate() {
            let r: ThroughputResult = match &merged {
                Some(m) => {
                    // Global solve over the merged per-pair path list —
                    // same snapshot, link table, and flow order as the
                    // unsharded path, hence identical output.
                    assert_eq!(m.combos[ci].tag, leo_shard::runner::combo_tag(mode, k));
                    let snap = ctx.snapshot(T_S, mode);
                    throughput_from_path_edges(
                        &ctx,
                        &snap,
                        &m.combos[ci].paths,
                        ctx.config.network.isl_gbps,
                        &mut FlowWorkspace::new(),
                    )
                }
                None => throughput(&ctx, T_S, mode, k),
            };
            per_kind.push(r.aggregate_gbps);
            rows.push(vec![
                format!("{kind:?}"),
                format!("{mode:?}"),
                format!("{k}"),
                format!("{:.1}", r.aggregate_gbps),
                format!("{}", r.routed_pairs),
                format!("{}", r.flows),
            ]);
            csv_rows.push((
                format!("{kind:?}"),
                format!("{mode:?}"),
                k,
                r.aggregate_gbps,
            ));
        }
        // Paper's headline ratios for this constellation.
        let (bp1, bp4, hy1, hy4) = (per_kind[0], per_kind[1], per_kind[2], per_kind[3]);
        diag!(
            "{kind:?}: hybrid/BP at k=1: {:.2}x (paper >2.5x) | k=4: {:.2}x (paper >3.1x) | multipath gain hybrid {:.2}x BP {:.2}x",
            hy1 / bp1.max(1e-9),
            hy4 / bp4.max(1e-9),
            hy4 / hy1.max(1e-9),
            bp4 / bp1.max(1e-9),
        );

        if want_disconnected && kind == ConstellationKind::Starlink {
            let fr = disconnected_satellite_fraction(&ctx, Mode::BpOnly, 0);
            let (lo, hi) = (
                fr.iter().copied().fold(f64::INFINITY, f64::min),
                fr.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            );
            diag!(
                "Starlink BP disconnected satellites across day: {:.1}%-{:.1}% (paper: 25.1%-31.5%)",
                lo * 100.0,
                hi * 100.0
            );
        }
    }
    print_table(
        "Fig 4: aggregate throughput (Gbps)",
        &[
            "constellation",
            "mode",
            "k",
            "Gbps",
            "routed pairs",
            "flows",
        ],
        &rows,
    );

    let path = results_dir().join("fig4_throughput.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["constellation", "mode", "k", "gbps"]).unwrap();
    for (c, m, k, g) in csv_rows {
        w.row(&[c, m, k.to_string(), format!("{g:.3}")]).unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    if cli.shards > 0 {
        finish_run_with(
            LABEL,
            &scale.config(),
            &[
                ("shards", cli.shards.to_string()),
                ("spawned", cli.spawn.to_string()),
            ],
        );
    } else {
        finish_run(LABEL, &scale.config());
    }
}
