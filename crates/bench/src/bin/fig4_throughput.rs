//! Fig. 4 — aggregate max-min-fair throughput for {Starlink, Kuiper} ×
//! {BP, hybrid} × {k=1, k=4}, plus the §5 disconnected-satellite
//! statistic (pass `--disconnected`).

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::throughput::{disconnected_satellite_fraction, throughput};
use leo_core::output::CsvWriter;
use leo_core::{ConstellationKind, Mode, StudyContext};
use leo_util::diag;

fn main() {
    let (scale, rest) = scale_from_args();
    init_run("fig4_throughput");
    let want_disconnected = rest.iter().any(|a| a == "--disconnected");
    let t_s = 0.0;

    let mut rows = Vec::new();
    let mut csv_rows: Vec<(String, String, usize, f64)> = Vec::new();
    for kind in [ConstellationKind::Starlink, ConstellationKind::Kuiper] {
        let mut cfg = scale.config();
        cfg.constellation = kind;
        let ctx = StudyContext::build(cfg);
        diag!(
            "fig4: {:?}: {} sats, {} pairs, {} relays",
            kind,
            ctx.num_satellites(),
            ctx.pairs.len(),
            ctx.ground.relays.len()
        );
        let mut per_kind: Vec<f64> = Vec::new();
        for mode in [Mode::BpOnly, Mode::Hybrid] {
            for k in [1usize, 4] {
                let r = throughput(&ctx, t_s, mode, k);
                per_kind.push(r.aggregate_gbps);
                rows.push(vec![
                    format!("{kind:?}"),
                    format!("{mode:?}"),
                    format!("{k}"),
                    format!("{:.1}", r.aggregate_gbps),
                    format!("{}", r.routed_pairs),
                    format!("{}", r.flows),
                ]);
                csv_rows.push((
                    format!("{kind:?}"),
                    format!("{mode:?}"),
                    k,
                    r.aggregate_gbps,
                ));
            }
        }
        // Paper's headline ratios for this constellation.
        let (bp1, bp4, hy1, hy4) = (per_kind[0], per_kind[1], per_kind[2], per_kind[3]);
        diag!(
            "{kind:?}: hybrid/BP at k=1: {:.2}x (paper >2.5x) | k=4: {:.2}x (paper >3.1x) | multipath gain hybrid {:.2}x BP {:.2}x",
            hy1 / bp1.max(1e-9),
            hy4 / bp4.max(1e-9),
            hy4 / hy1.max(1e-9),
            bp4 / bp1.max(1e-9),
        );

        if want_disconnected && kind == ConstellationKind::Starlink {
            let fr = disconnected_satellite_fraction(&ctx, Mode::BpOnly, 0);
            let (lo, hi) = (
                fr.iter().copied().fold(f64::INFINITY, f64::min),
                fr.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            );
            diag!(
                "Starlink BP disconnected satellites across day: {:.1}%-{:.1}% (paper: 25.1%-31.5%)",
                lo * 100.0,
                hi * 100.0
            );
        }
    }
    print_table(
        "Fig 4: aggregate throughput (Gbps)",
        &[
            "constellation",
            "mode",
            "k",
            "Gbps",
            "routed pairs",
            "flows",
        ],
        &rows,
    );

    let path = results_dir().join("fig4_throughput.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["constellation", "mode", "k", "gbps"]).unwrap();
    for (c, m, k, g) in csv_rows {
        w.row(&[c, m, k.to_string(), format!("{g:.3}")]).unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("fig4_throughput", &scale.config());
}
