//! Extension — weather-adjusted throughput, closing the loop between the
//! paper's §5 (throughput) and §6 (attenuation): GT-link capacities are
//! degraded to what their realized attenuation still supports through
//! the DVB-S2 MODCOD ladder, and max-min throughput is recomputed.
//! BP's all-radio paths lose more than hybrid's two-radio-hop paths.

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::weather_throughput::weathered_throughput;
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_util::diag;
use leo_util::telemetry::Heartbeat;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("ext_weather_throughput");
    let ctx = StudyContext::build(scale.config());

    let seeds = [11u64, 22, 33];
    let hb = Heartbeat::new("ext_weather_throughput", 2 * seeds.len() as u64);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for mode in [Mode::BpOnly, Mode::Hybrid] {
        for &seed in &seeds {
            let r = weathered_throughput(&ctx, 0.0, mode, 2, seed);
            hb.tick(1);
            rows.push(vec![
                format!("{mode:?}"),
                seed.to_string(),
                format!("{:.1}", r.clear_gbps),
                format!("{:.1}", r.weathered_gbps),
                format!("{:.1}%", r.retention() * 100.0),
            ]);
            csv.push((format!("{mode:?}"), seed, r));
        }
    }
    print_table(
        "Weather-adjusted max-min throughput (k=2)",
        &[
            "mode",
            "weather seed",
            "clear Gbps",
            "weathered Gbps",
            "retention",
        ],
        &rows,
    );
    diag!(
        "ISLs are weather-immune, so hybrid retains more of its clear-sky \
         throughput than BP on every realization"
    );

    let path = results_dir().join("ext_weather_throughput.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&["mode", "seed", "clear_gbps", "weathered_gbps", "retention"])
        .unwrap();
    for (m, s, r) in csv {
        w.row(&[
            m,
            s.to_string(),
            format!("{:.3}", r.clear_gbps),
            format!("{:.3}", r.weathered_gbps),
            format!("{:.4}", r.retention()),
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("ext_weather_throughput", &ctx.config);
}
