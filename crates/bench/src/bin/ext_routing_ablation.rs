//! Extension — routing-scheme ablation (the paper's §5 future work):
//! greedy shortest-disjoint (the paper's scheme) vs Suurballe-optimal
//! pairs vs sequential congestion-aware routing, compared on max link
//! utilization and the latency each scheme pays.

use leo_bench::{finish_run, init_run, print_table, results_dir, scale_from_args};
use leo_core::experiments::routing::{route_all, RoutingScheme};
use leo_core::output::CsvWriter;
use leo_core::{Mode, StudyContext};
use leo_util::diag;

fn main() {
    let (scale, _) = scale_from_args();
    init_run("ext_routing_ablation");
    let ctx = StudyContext::build(scale.config());
    let schemes = [
        RoutingScheme::ShortestDisjoint,
        RoutingScheme::SuurballePair,
        RoutingScheme::CongestionAware,
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for mode in [Mode::BpOnly, Mode::Hybrid] {
        for scheme in schemes {
            let r = route_all(&ctx, 0.0, mode, 2, scheme);
            rows.push(vec![
                format!("{mode:?}"),
                format!("{scheme:?}"),
                format!("{:.3}", r.max_utilization),
                format!("{:.2}", r.mean_path_delay_ms),
                format!("{}", r.flows),
            ]);
            csv.push((format!("{mode:?}"), format!("{scheme:?}"), r));
        }
    }
    print_table(
        "Routing ablation (k=2, unit demand per sub-flow)",
        &[
            "mode",
            "scheme",
            "max utilization",
            "mean delay (ms)",
            "flows",
        ],
        &rows,
    );
    diag!(
        "congestion-aware routing trades delay for lower peak utilization — \
         exactly the tradeoff the paper predicts for 'superior routing schemes' (§5)"
    );

    let path = results_dir().join("ext_routing_ablation.csv");
    let mut w = CsvWriter::create(&path).expect("create csv");
    w.row(&[
        "mode",
        "scheme",
        "max_utilization",
        "mean_delay_ms",
        "flows",
    ])
    .unwrap();
    for (m, s, r) in csv {
        w.row(&[
            m,
            s,
            format!("{:.4}", r.max_utilization),
            format!("{:.3}", r.mean_path_delay_ms),
            r.flows.to_string(),
        ])
        .unwrap();
    }
    w.flush().unwrap();
    diag!("wrote {}", path.display());
    finish_run("ext_routing_ablation", &ctx.config);
}
