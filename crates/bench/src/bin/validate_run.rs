//! Validate a telemetry run log (`RUN_<label>.jsonl`): every line must
//! parse as a known event type, the first must be `run_start`, and the
//! last must be the run manifest with its provenance fields. CI runs
//! this against a real figure run so schema drift fails the build.
//!
//! Usage: `validate_run [--require-lint-clean] <path/to/RUN_label.jsonl>`
//! — exits 0 and prints a one-line summary on success, exits 1 with the
//! offending line on failure.
//!
//! The manifest's `lint_clean` field records whether the producing tree
//! passed `leo-lint --deny` (set by the bins from `LEO_LINT_CLEAN`). A
//! manifest saying `"false"` always fails validation; under
//! `--require-lint-clean` (the CI lane), anything but `"true"` fails —
//! results from an unlinted tree don't count as reproducible evidence.
//! The gate also pins the rule set: the manifest's `lint_version` and
//! `lint_rules` must match this binary's compiled-in analyzer, so a log
//! produced before a rule landed cannot pass today's gate.

use leo_util::telemetry::{validate_event_line, Json};

fn fail(msg: &str) -> ! {
    eprintln!("validate_run: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut require_lint_clean = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-lint-clean" => require_lint_clean = true,
            _ => path = Some(arg),
        }
    }
    let path = path.unwrap_or_else(|| {
        fail("usage: validate_run [--require-lint-clean] <RUN_label.jsonl>");
    });
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        fail(&format!("{path}: empty run log"));
    }

    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let ty = validate_event_line(line).unwrap_or_else(|e| {
            if last {
                // A malformed *final* line is almost always a run log cut
                // off mid-write (producer crashed, was killed, or is still
                // running) — say so instead of reporting a schema error.
                fail(&format!(
                    "{path}:{}: run log appears truncated — the final line \
                     is not a complete event ({e}) and no closing manifest \
                     was written (producer killed mid-run or still \
                     writing?)\n  {line}",
                    i + 1
                ));
            }
            fail(&format!("{path}:{}: {e}\n  {line}", i + 1))
        });
        match counts.iter_mut().find(|(t, _)| *t == ty) {
            Some((_, n)) => *n += 1,
            None => counts.push((ty, 1)),
        }
        if i == 0 && ty != "run_start" {
            fail(&format!(
                "{path}: first event is `{ty}`, expected `run_start`"
            ));
        }
        if last && ty != "manifest" {
            fail(&format!(
                "{path}: last event is `{ty}`, expected `manifest` — the \
                 run log appears truncated (producer never reached \
                 `finish_run`)"
            ));
        }
        if ty == "manifest" && !last {
            fail(&format!("{path}:{}: manifest before end of log", i + 1));
        }
    }

    // The manifest's provenance fields, beyond schema validity.
    let manifest = Json::parse(lines[lines.len() - 1]).unwrap();
    let hash = manifest
        .get("config_hash")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("manifest: missing config_hash"));
    if !hash.starts_with("0x") || hash.len() != 18 {
        fail(&format!(
            "manifest: config_hash `{hash}` is not a 0x-prefixed 64-bit hex hash"
        ));
    }
    for key in ["seed", "threads", "wall_ns"] {
        if manifest.get(key).and_then(Json::as_num).is_none() {
            fail(&format!("manifest: missing numeric field `{key}`"));
        }
    }
    if !matches!(manifest.get("phases"), Some(Json::Obj(_))) {
        fail("manifest: missing `phases` object");
    }
    let lint_clean = manifest.get("lint_clean").and_then(Json::as_str);
    if lint_clean == Some("false") {
        fail("manifest: lint_clean is \"false\" — the producing tree failed leo-lint");
    }
    if require_lint_clean && lint_clean != Some("true") {
        fail(&format!(
            "manifest: --require-lint-clean needs lint_clean=\"true\", got {:?} \
             (run under LEO_LINT_CLEAN=1 after `leo-lint --deny` passes)",
            lint_clean.unwrap_or("<absent>")
        ));
    }
    if require_lint_clean {
        // "Clean" is relative to a rule set: a manifest produced by an
        // older analyzer (fewer rules) must not satisfy today's gate.
        let version = manifest.get("lint_version").and_then(Json::as_str);
        let want_version = leo_lint::LINT_VERSION.to_string();
        if version != Some(want_version.as_str()) {
            fail(&format!(
                "manifest: lint_version {:?} does not match this analyzer's {want_version} \
                 — lint_clean was asserted against a different rule set",
                version.unwrap_or("<absent>")
            ));
        }
        let rules = manifest.get("lint_rules").and_then(Json::as_str);
        let want_rules = leo_lint::rules::known_rule_names().join(",");
        if rules != Some(want_rules.as_str()) {
            fail(&format!(
                "manifest: lint_rules {:?} does not match this analyzer's rule set ({want_rules})",
                rules.unwrap_or("<absent>")
            ));
        }
    }

    let summary: Vec<String> = counts.iter().map(|(t, n)| format!("{n} {t}")).collect();
    println!(
        "{path}: ok ({} events: {})",
        lines.len(),
        summary.join(", ")
    );
}
