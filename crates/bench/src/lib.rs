//! # leo-bench — figure harnesses and performance benches
//!
//! One binary per paper figure (run with `cargo run -p leo-bench --release
//! --bin figN_…`), each accepting `--scale tiny|bench|paper` (default
//! `bench`; `paper` reproduces the full 1,000-city / 5,000-pair / 96-
//! snapshot setup). Results print as aligned tables and are also written
//! as CSV under `results/`.

use leo_core::{ExperimentScale, StudyConfig};
use leo_util::telemetry;
use std::path::PathBuf;

/// Parse `--scale <tiny|bench|paper>` from `std::env::args`, defaulting
/// to `bench`. Unknown values abort with a usage message.
pub fn scale_from_args() -> (ExperimentScale, Vec<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Bench;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            let v = it.next().unwrap_or_default();
            scale = ExperimentScale::parse(&v).unwrap_or_else(|| {
                // lint: allow(print-in-lib) CLI usage-error surface shared by every figure bin; exits immediately
                eprintln!("unknown scale '{v}'; use tiny|bench|paper");
                std::process::exit(2);
            });
        } else {
            rest.push(a);
        }
    }
    (scale, rest)
}

/// The scale's config with at least `min_cities` cities — the named-pair
/// figures (Maceió–Durban, Delhi–Sydney, Brisbane–Tokyo) need the full
/// real-city list loaded.
pub fn config_with_cities(scale: ExperimentScale, min_cities: usize) -> StudyConfig {
    let mut cfg = scale.config();
    cfg.num_cities = cfg.num_cities.max(min_cities);
    cfg
}

/// Open the telemetry run log for a figure binary.
///
/// No-op (returns `None`) unless `LEO_LOG=info|debug` is set; when
/// logging, events stream to `RUN_<label>.jsonl` under `LEO_LOG_DIR`
/// (default: the working directory).
pub fn init_run(label: &str) -> Option<PathBuf> {
    telemetry::init(label)
}

/// Close the telemetry run with a provenance manifest: FNV-1a hash of
/// the config's canonical kv string, its RNG seed, and the machine's
/// resolved worker count (the bins all fan out with `threads = 0` =
/// one per core). No-op when telemetry is disabled.
pub fn finish_run(label: &str, cfg: &StudyConfig) -> Option<PathBuf> {
    let hash = telemetry::fnv1a_64(cfg.to_kv_string().as_bytes());
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Provenance: did the producing tree pass `leo-lint --deny`? CI
    // exports LEO_LINT_CLEAN=1 after the lint lane; `validate_run
    // --require-lint-clean` rejects manifests that don't say "true".
    let lint_clean = match std::env::var("LEO_LINT_CLEAN").as_deref() {
        Ok("1") | Ok("true") => "true",
        Ok("0") | Ok("false") => "false",
        _ => "unknown",
    };
    // Sample RSS once more so the recorded peak covers the full run even
    // when no heartbeat fired near the high-water mark.
    let _ = telemetry::rss_kb();
    // `lint_clean` is only meaningful relative to a rule set: record the
    // analyzer version and the rules it enforced, so a manifest produced
    // before a rule landed can't masquerade as clean under the new set
    // (`validate_run --require-lint-clean` checks both against its own).
    let manifest = telemetry::RunManifest::new(label, hash, cfg.seed, threads)
        .with("cities", cfg.num_cities)
        .with("pairs", cfg.num_pairs)
        .with("lint_clean", lint_clean)
        .with("lint_version", leo_lint::LINT_VERSION)
        .with("lint_rules", leo_lint::rules::known_rule_names().join(","))
        .with("peak_rss_kb", telemetry::peak_rss_kb());
    telemetry::finish_run(&manifest)
}

/// Directory where figure CSVs land (`results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Simple aligned two-column-or-more table printer.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    // lint: allow(print-in-lib) stdout is the figure bins' data channel; this is their shared table reporter
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        // lint: allow(print-in-lib) stdout is the figure bins' data channel; this is their shared table reporter
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for r in rows {
        line(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_respects_minimum() {
        let cfg = config_with_cities(ExperimentScale::Tiny, 340);
        assert!(cfg.num_cities >= 340);
        let cfg2 = config_with_cities(ExperimentScale::Paper, 340);
        assert_eq!(cfg2.num_cities, 1000);
    }
}
