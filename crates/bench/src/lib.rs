//! # leo-bench — figure harnesses and performance benches
//!
//! One binary per paper figure (run with `cargo run -p leo-bench --release
//! --bin figN_…`), each accepting `--scale tiny|bench|paper` (default
//! `bench`; `paper` reproduces the full 1,000-city / 5,000-pair / 96-
//! snapshot setup). Results print as aligned tables and are also written
//! as CSV under `results/`.

use leo_core::{ExperimentScale, StudyConfig};
use leo_shard::ShardSpec;
use leo_util::telemetry;
use std::path::{Path, PathBuf};

/// Parse `--scale <tiny|bench|paper>` from `std::env::args`, defaulting
/// to `bench`. Unknown values abort with a usage message.
pub fn scale_from_args() -> (ExperimentScale, Vec<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Bench;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            let v = it.next().unwrap_or_default();
            scale = ExperimentScale::parse(&v).unwrap_or_else(|| {
                // lint: allow(print-in-lib) CLI usage-error surface shared by every figure bin; exits immediately
                eprintln!("unknown scale '{v}'; use tiny|bench|paper");
                std::process::exit(2);
            });
        } else {
            rest.push(a);
        }
    }
    (scale, rest)
}

/// The CLI name of a scale (inverse of `ExperimentScale::parse`), for
/// re-spawning this binary as shard workers.
pub fn scale_name(scale: ExperimentScale) -> &'static str {
    match scale {
        ExperimentScale::Tiny => "tiny",
        ExperimentScale::Bench => "bench",
        ExperimentScale::Paper => "paper",
    }
}

/// Sharding options shared by the figure bins (parsed from the args
/// left over after [`scale_from_args`]):
///
/// * `--shards K` — coordinator: run the study as `K` pair shards and
///   merge (output stays byte-identical to an unsharded run).
/// * `--spawn` — with `--shards K`, run each shard as a separate OS
///   process (re-invoking this binary in worker mode) instead of
///   in-process workers.
/// * `--shard i/K` — worker mode: compute shard `i` only, spill it to
///   the shard dir, print nothing to stdout, and exit.
/// * `--shard-dir D` — where spill files live (default
///   `results/shards`).
#[derive(Debug, Clone, Default)]
pub struct ShardCli {
    /// Coordinator shard count; 0 = unsharded.
    pub shards: usize,
    /// Coordinator: fan out over OS processes instead of threads.
    pub spawn: bool,
    /// Worker mode: the one shard this process computes.
    pub worker: Option<ShardSpec>,
    /// Spill directory override.
    pub dir: Option<PathBuf>,
    /// Args not consumed by the shard protocol.
    pub rest: Vec<String>,
}

/// Parse the shard protocol flags out of `rest`. Malformed values abort
/// with a usage message (CLI surface, same policy as
/// [`scale_from_args`]).
pub fn shard_cli(rest: Vec<String>) -> ShardCli {
    let mut cli = ShardCli::default();
    let mut it = rest.into_iter();
    let bail = |msg: String| -> ! {
        // lint: allow(print-in-lib) CLI usage-error surface shared by every figure bin; exits immediately
        eprintln!("{msg}");
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                let v = it.next().unwrap_or_default();
                cli.shards = match v.parse::<usize>() {
                    Ok(k) if k >= 1 => k,
                    _ => bail(format!("--shards needs a count >= 1, got '{v}'")),
                };
            }
            "--spawn" => cli.spawn = true,
            "--shard" => {
                let v = it.next().unwrap_or_default();
                cli.worker = match ShardSpec::parse(&v) {
                    Ok(s) => Some(s),
                    Err(e) => bail(format!("--shard: {e}")),
                };
            }
            "--shard-dir" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    bail("--shard-dir needs a path".to_string());
                }
                cli.dir = Some(PathBuf::from(v));
            }
            _ => cli.rest.push(a),
        }
    }
    if cli.worker.is_some() && (cli.shards > 0 || cli.spawn) {
        bail("--shard (worker mode) conflicts with --shards/--spawn".to_string());
    }
    cli
}

/// The spill directory for this run (created on demand): the `--shard-dir`
/// override or `results/shards`.
pub fn shard_dir(cli: &ShardCli) -> PathBuf {
    let dir = cli
        .dir
        .clone()
        .unwrap_or_else(|| results_dir().join("shards"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Worker-mode run-log label: `label.s<i>of<K>` — each worker gets its
/// own `RUN_*.jsonl` (own heartbeats, counters, and manifest), and
/// `validate_run` accepts them like any other run log.
pub fn shard_label(label: &str, spec: ShardSpec) -> String {
    format!("{label}.s{}of{}", spec.index, spec.count)
}

/// Re-invoke this binary once per shard as an OS worker process
/// (`--scale S --shard i/K --shard-dir D` + `extra`), wait for all of
/// them, and fail if any worker fails. Workers inherit stdio: their
/// stdout stays silent by protocol, diagnostics go to stderr.
pub fn spawn_shard_workers(
    scale: ExperimentScale,
    count: usize,
    dir: &Path,
    extra: &[&str],
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut children = Vec::with_capacity(count);
    for spec in ShardSpec::all(count) {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--scale")
            .arg(scale_name(scale))
            .arg("--shard")
            .arg(spec.to_string())
            .arg("--shard-dir")
            .arg(dir);
        for a in extra {
            cmd.arg(a);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn shard worker {spec}: {e}"))?;
        children.push((spec, child));
    }
    let mut failed = Vec::new();
    for (spec, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("wait for shard worker {spec}: {e}"))?;
        if !status.success() {
            failed.push(format!("worker {spec} exited with {status}"));
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(failed.join("; "))
    }
}

/// The scale's config with at least `min_cities` cities — the named-pair
/// figures (Maceió–Durban, Delhi–Sydney, Brisbane–Tokyo) need the full
/// real-city list loaded.
pub fn config_with_cities(scale: ExperimentScale, min_cities: usize) -> StudyConfig {
    let mut cfg = scale.config();
    cfg.num_cities = cfg.num_cities.max(min_cities);
    cfg
}

/// Open the telemetry run log for a figure binary.
///
/// No-op (returns `None`) unless `LEO_LOG=info|debug` is set; when
/// logging, events stream to `RUN_<label>.jsonl` under `LEO_LOG_DIR`
/// (default: the working directory).
pub fn init_run(label: &str) -> Option<PathBuf> {
    telemetry::init(label)
}

/// Close the telemetry run with a provenance manifest: FNV-1a hash of
/// the config's canonical kv string, its RNG seed, and the machine's
/// resolved worker count (the bins all fan out with `threads = 0` =
/// one per core). No-op when telemetry is disabled.
pub fn finish_run(label: &str, cfg: &StudyConfig) -> Option<PathBuf> {
    finish_run_with(label, cfg, &[])
}

/// [`finish_run`] with extra manifest fields — shard workers record
/// their shard coordinate and pair range here, coordinators their
/// shard count and merge provenance.
pub fn finish_run_with(
    label: &str,
    cfg: &StudyConfig,
    extras: &[(&str, String)],
) -> Option<PathBuf> {
    let hash = telemetry::fnv1a_64(cfg.to_kv_string().as_bytes());
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Provenance: did the producing tree pass `leo-lint --deny`? CI
    // exports LEO_LINT_CLEAN=1 after the lint lane; `validate_run
    // --require-lint-clean` rejects manifests that don't say "true".
    let lint_clean = match std::env::var("LEO_LINT_CLEAN").as_deref() {
        Ok("1") | Ok("true") => "true",
        Ok("0") | Ok("false") => "false",
        _ => "unknown",
    };
    // Sample RSS once more so the recorded peak covers the full run even
    // when no heartbeat fired near the high-water mark.
    let _ = telemetry::rss_kb();
    // `lint_clean` is only meaningful relative to a rule set: record the
    // analyzer version and the rules it enforced, so a manifest produced
    // before a rule landed can't masquerade as clean under the new set
    // (`validate_run --require-lint-clean` checks both against its own).
    let mut manifest = telemetry::RunManifest::new(label, hash, cfg.seed, threads)
        .with("cities", cfg.num_cities)
        .with("pairs", cfg.num_pairs)
        .with("lint_clean", lint_clean)
        .with("lint_version", leo_lint::LINT_VERSION)
        .with("lint_rules", leo_lint::rules::known_rule_names().join(","))
        .with("peak_rss_kb", telemetry::peak_rss_kb());
    for (k, v) in extras {
        manifest = manifest.with(k, v);
    }
    telemetry::finish_run(&manifest)
}

/// Directory where figure CSVs land (`results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Simple aligned two-column-or-more table printer.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    // lint: allow(print-in-lib) stdout is the figure bins' data channel; this is their shared table reporter
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        // lint: allow(print-in-lib) stdout is the figure bins' data channel; this is their shared table reporter
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for r in rows {
        line(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_respects_minimum() {
        let cfg = config_with_cities(ExperimentScale::Tiny, 340);
        assert!(cfg.num_cities >= 340);
        let cfg2 = config_with_cities(ExperimentScale::Paper, 340);
        assert_eq!(cfg2.num_cities, 1000);
    }
}
