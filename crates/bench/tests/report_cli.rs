//! CLI-level tests for `validate_run` and `leo-report`, driven through
//! the compiled binaries (`CARGO_BIN_EXE_*`) against synthetic run logs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("leo_report_cli");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn write_log(name: &str, lines: &[&str]) -> PathBuf {
    let p = tmp(name);
    std::fs::write(&p, lines.join("\n") + "\n").expect("write run log");
    p
}

fn validate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_validate_run"))
        .args(args)
        .output()
        .expect("spawn validate_run")
}

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_leo-report"))
        .args(args)
        .output()
        .expect("spawn leo-report")
}

const RUN_START: &str = r#"{"type":"run_start","label":"t","level":"info","t_ns":1}"#;
const SERIES: &str = r#"{"type":"series","t_ns":2,"name":"m","index":0,"t_s":0,"count":2,"low":0,"sum":3,"min":1,"max":2,"sub":32,"buckets":[[2048,2]]}"#;
const HEARTBEAT: &str = r#"{"type":"heartbeat","t_ns":3,"label":"t","done":1,"total":2,"rate_per_s":0.5,"eta_s":2,"rss_kb":3072,"peak_rss_kb":3072,"counters":{"c":3}}"#;
const COUNTER: &str = r#"{"type":"counter","name":"c","value":3}"#;

fn manifest(counter_value: u64) -> String {
    format!(
        r#"{{"type":"manifest","label":"t","config_hash":"0x0123456789abcdef","seed":1,"threads":2,"wall_ns":10,"level":"info","phases":{{"p":{{"count":1,"total_ns":5,"max_ns":5}}}},"counters":{{"c":{counter_value},"busy_ns":{}}},"hists":{{}},"peak_rss_kb":"3072"}}"#,
        counter_value * 100
    )
}

#[test]
fn validate_accepts_series_and_heartbeat_events() {
    let m = manifest(3);
    let p = write_log("ok.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let out = validate(&[p.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("1 series"), "{stdout}");
    assert!(stdout.contains("1 heartbeat"), "{stdout}");
}

#[test]
fn validate_diagnoses_truncated_final_line() {
    // A run log cut off mid-write: the final line is half a series event.
    let p = write_log(
        "truncated.jsonl",
        &[RUN_START, SERIES, r#"{"type":"series","t_ns":9,"na"#],
    );
    let out = validate(&[p.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("truncated"),
        "diagnostic should name truncation, got: {stderr}"
    );
    assert!(
        stderr.contains("manifest"),
        "diagnostic should mention the missing manifest, got: {stderr}"
    );
}

#[test]
fn validate_diagnoses_missing_manifest_on_valid_final_event() {
    // Every line valid, but the producer never reached finish_run.
    let p = write_log("no_manifest.jsonl", &[RUN_START, SERIES, COUNTER]);
    let out = validate(&[p.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");
    assert!(stderr.contains("finish_run"), "{stderr}");
}

#[test]
fn report_single_run_renders_summaries() {
    let m = manifest(3);
    let p = write_log("single.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let out = report(&[p.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("phases"), "{stdout}");
    assert!(stdout.contains("counters"), "{stdout}");
    assert!(stdout.contains("series"), "{stdout}");
    assert!(stdout.contains("heartbeats: 1"), "{stdout}");
    assert!(stdout.contains("3.0 MiB"), "{stdout}");
}

#[test]
fn report_self_diff_is_clean_and_exits_zero() {
    let m = manifest(3);
    let a = write_log("diff_a.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let b = write_log("diff_b.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let out = report(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(!stdout.contains("REGRESSION"), "{stdout}");
}

#[test]
fn report_diff_flags_deterministic_counter_change_but_not_ns_noise() {
    let ma = manifest(3); // c=3, busy_ns=300
    let mb = manifest(4); // c=4, busy_ns=400
    let a = write_log("reg_a.jsonl", &[RUN_START, SERIES, &ma]);
    let b = write_log("reg_b.jsonl", &[RUN_START, SERIES, &mb]);
    let out = report(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "deterministic drift must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    // The _ns counter drifted just as much but is informational-only.
    assert!(stdout.contains("counter busy_ns"), "{stdout}");
    assert!(!stdout.contains("busy_ns  REGRESSION"), "{stdout}");

    // A generous threshold waves the same drift through.
    let out = report(&[
        "--threshold-pct",
        "50",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success());
}

#[test]
fn report_diff_zero_baseline_counter_is_deterministic_regression() {
    // Regression: a 0 → n counter used to divide by the zero baseline
    // and print an astronomical junk percent. It must now report the
    // absolute delta and a deterministic REGRESSION verdict that no
    // --threshold-pct can wave through.
    let ma = manifest(0); // c=0
    let mb = manifest(4); // c=4
    let a = write_log("zero_a.jsonl", &[RUN_START, SERIES, &ma]);
    let b = write_log("zero_b.jsonl", &[RUN_START, SERIES, &mb]);
    let out = report(&[
        "--threshold-pct",
        "1000000",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "zero baseline must regress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION (zero baseline)"), "{stdout}");
    assert!(stdout.contains("+4 (abs, zero baseline)"), "{stdout}");
    assert!(!stdout.contains("NaN%"), "{stdout}");
    assert!(!stdout.contains("inf%"), "{stdout}");
}

#[test]
fn report_diff_one_sided_counter_is_deterministic_regression() {
    // A deterministic counter present in only one run used to produce a
    // NaN percent that compared false against every threshold and was
    // silently dropped from the table.
    let ma = manifest(3);
    let mb = r#"{"type":"manifest","label":"t","config_hash":"0x0123456789abcdef","seed":1,"threads":2,"wall_ns":10,"level":"info","phases":{"p":{"count":1,"total_ns":5,"max_ns":5}},"counters":{"c":3,"busy_ns":300,"extra":7},"hists":{},"peak_rss_kb":"3072"}"#.to_string();
    let a = write_log("oneside_a.jsonl", &[RUN_START, SERIES, &ma]);
    let b = write_log("oneside_b.jsonl", &[RUN_START, SERIES, &mb]);
    let out = report(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "one-sided counter must regress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("counter extra"), "{stdout}");
    assert!(stdout.contains("REGRESSION (one run only)"), "{stdout}");
    assert!(!stdout.contains("NaN%"), "{stdout}");
}

#[test]
fn report_merges_shard_logs_into_one_run() {
    // Two synthetic worker logs of one sharded run: counters sum, series
    // sketches merge (count 2+2), heartbeats sum, the `.s<i>of<K>` label
    // suffix strips, and per-shard extras that disagree are dropped.
    let mk = |i: usize| {
        format!(
            r#"{{"type":"manifest","label":"t.s{i}of2","config_hash":"0xabc","seed":1,"threads":2,"wall_ns":10,"level":"info","phases":{{"p":{{"count":1,"total_ns":5,"max_ns":5}}}},"counters":{{"c":3}},"hists":{{}},"peak_rss_kb":"{}","shard":"{i}/2"}}"#,
            3072 * (i + 1)
        )
    };
    let start =
        |i: usize| format!(r#"{{"type":"run_start","label":"t.s{i}of2","level":"info","t_ns":1}}"#);
    let (s0, m0) = (start(0), mk(0));
    let (s1, m1) = (start(1), mk(1));
    let a = write_log("merge_s0.jsonl", &[&s0, SERIES, HEARTBEAT, &m0]);
    let b = write_log("merge_s1.jsonl", &[&s1, SERIES, HEARTBEAT, &m1]);
    let out = report(&["--merge", a.to_str().unwrap(), b.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("run t "),
        "label suffix must strip: {stdout}"
    );
    assert!(stdout.contains("c        6"), "counters must sum: {stdout}");
    assert!(stdout.contains("heartbeats: 2"), "{stdout}");
    // Peak RSS is the per-worker max: 6144 kB = 6 MiB.
    assert!(stdout.contains("6.0 MiB"), "{stdout}");
    // The per-shard `shard` extra disagrees across workers → dropped.
    assert!(!stdout.contains("shard = "), "{stdout}");
    assert!(stdout.contains("merged_shard_logs = 2"), "{stdout}");
    // Merged series: two events of count 2 each.
    assert!(
        stdout.contains("m       2      4"),
        "series must merge: {stdout}"
    );

    // The RSS assertion bounds the per-worker peak.
    let ok = report(&[
        "--merge",
        "--assert-peak-rss-mb",
        "7",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(ok.status.success());
    let bad = report(&[
        "--merge",
        "--assert-peak-rss-mb",
        "5",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert_eq!(bad.status.code(), Some(1));
}

#[test]
fn report_merge_rejects_mixed_configs() {
    let m_other = r#"{"type":"manifest","label":"t.s1of2","config_hash":"0xdef","seed":1,"threads":2,"wall_ns":10,"level":"info","phases":{},"counters":{},"hists":{}}"#;
    let m = manifest(3);
    let a = write_log("mixed_a.jsonl", &[RUN_START, &m]);
    let b = write_log("mixed_b.jsonl", &[RUN_START, m_other]);
    let out = report(&["--merge", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("config_hash"), "{stderr}");
}

/// The sketch-derived columns of every `rtt_ms_*` series row, with the
/// `snaps` column dropped (a sharded run emits per-worker snapshot
/// events, so snap *counts* differ while every derived statistic is
/// bit-identical).
fn rtt_series_stats(stdout: &str) -> Vec<Vec<String>> {
    stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("rtt_ms_"))
        .map(|l| {
            let mut cells: Vec<String> = l.split_whitespace().map(str::to_string).collect();
            cells.remove(1);
            cells
        })
        .collect()
}

#[test]
fn merged_shard_run_logs_match_single_run_series() {
    // End to end through the real driver: fig2 at tiny scale, once
    // sharded over 2 spawned workers, once unsharded. The merged worker
    // series must reproduce the single-process series statistics
    // exactly.
    let dir = std::env::temp_dir().join(format!("leo_report_merge_fig2_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let fig2 = env!("CARGO_BIN_EXE_fig2_latency");
    let run = |args: &[&str]| {
        let out = Command::new(fig2)
            .args(["--scale", "tiny"])
            .args(args)
            .current_dir(&dir)
            .env("LEO_LOG", "info")
            .env("LEO_LOG_DIR", &dir)
            .output()
            .expect("spawn fig2_latency");
        assert!(
            out.status.success(),
            "fig2 {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    // Unsharded first: telemetry never overwrites, so a second run with
    // the same label lands in `RUN_<label>-01.jsonl` — the sharded
    // coordinator's log, which this test doesn't read.
    run(&[]);
    let shards = dir.join("shards");
    run(&[
        "--shards",
        "2",
        "--spawn",
        "--shard-dir",
        shards.to_str().unwrap(),
    ]);
    let single = report(&[dir.join("RUN_fig2_latency.jsonl").to_str().unwrap()]);
    assert!(single.status.success());
    let merged = report(&[
        "--merge",
        dir.join("RUN_fig2_latency.s0of2.jsonl").to_str().unwrap(),
        dir.join("RUN_fig2_latency.s1of2.jsonl").to_str().unwrap(),
    ]);
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    let s = rtt_series_stats(&String::from_utf8_lossy(&single.stdout));
    let m = rtt_series_stats(&String::from_utf8_lossy(&merged.stdout));
    assert!(!s.is_empty(), "single run must report rtt_ms_* series");
    assert_eq!(s, m, "merged shard series must equal the single-run series");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_asserts_peak_rss_budget() {
    let m = manifest(3);
    let p = write_log("rss.jsonl", &[RUN_START, HEARTBEAT, &m]);
    // Peak is 3 MiB (3072 kB from heartbeat and manifest).
    let ok = report(&["--assert-peak-rss-mb", "4", p.to_str().unwrap()]);
    assert!(ok.status.success());
    let bad = report(&["--assert-peak-rss-mb", "2", p.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("exceeds budget"), "{stderr}");
}
