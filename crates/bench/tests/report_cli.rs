//! CLI-level tests for `validate_run` and `leo-report`, driven through
//! the compiled binaries (`CARGO_BIN_EXE_*`) against synthetic run logs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("leo_report_cli");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn write_log(name: &str, lines: &[&str]) -> PathBuf {
    let p = tmp(name);
    std::fs::write(&p, lines.join("\n") + "\n").expect("write run log");
    p
}

fn validate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_validate_run"))
        .args(args)
        .output()
        .expect("spawn validate_run")
}

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_leo-report"))
        .args(args)
        .output()
        .expect("spawn leo-report")
}

const RUN_START: &str = r#"{"type":"run_start","label":"t","level":"info","t_ns":1}"#;
const SERIES: &str = r#"{"type":"series","t_ns":2,"name":"m","index":0,"t_s":0,"count":2,"low":0,"sum":3,"min":1,"max":2,"sub":32,"buckets":[[2048,2]]}"#;
const HEARTBEAT: &str = r#"{"type":"heartbeat","t_ns":3,"label":"t","done":1,"total":2,"rate_per_s":0.5,"eta_s":2,"rss_kb":3072,"peak_rss_kb":3072,"counters":{"c":3}}"#;
const COUNTER: &str = r#"{"type":"counter","name":"c","value":3}"#;

fn manifest(counter_value: u64) -> String {
    format!(
        r#"{{"type":"manifest","label":"t","config_hash":"0x0123456789abcdef","seed":1,"threads":2,"wall_ns":10,"level":"info","phases":{{"p":{{"count":1,"total_ns":5,"max_ns":5}}}},"counters":{{"c":{counter_value},"busy_ns":{}}},"hists":{{}},"peak_rss_kb":"3072"}}"#,
        counter_value * 100
    )
}

#[test]
fn validate_accepts_series_and_heartbeat_events() {
    let m = manifest(3);
    let p = write_log("ok.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let out = validate(&[p.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("1 series"), "{stdout}");
    assert!(stdout.contains("1 heartbeat"), "{stdout}");
}

#[test]
fn validate_diagnoses_truncated_final_line() {
    // A run log cut off mid-write: the final line is half a series event.
    let p = write_log(
        "truncated.jsonl",
        &[RUN_START, SERIES, r#"{"type":"series","t_ns":9,"na"#],
    );
    let out = validate(&[p.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("truncated"),
        "diagnostic should name truncation, got: {stderr}"
    );
    assert!(
        stderr.contains("manifest"),
        "diagnostic should mention the missing manifest, got: {stderr}"
    );
}

#[test]
fn validate_diagnoses_missing_manifest_on_valid_final_event() {
    // Every line valid, but the producer never reached finish_run.
    let p = write_log("no_manifest.jsonl", &[RUN_START, SERIES, COUNTER]);
    let out = validate(&[p.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");
    assert!(stderr.contains("finish_run"), "{stderr}");
}

#[test]
fn report_single_run_renders_summaries() {
    let m = manifest(3);
    let p = write_log("single.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let out = report(&[p.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("phases"), "{stdout}");
    assert!(stdout.contains("counters"), "{stdout}");
    assert!(stdout.contains("series"), "{stdout}");
    assert!(stdout.contains("heartbeats: 1"), "{stdout}");
    assert!(stdout.contains("3.0 MiB"), "{stdout}");
}

#[test]
fn report_self_diff_is_clean_and_exits_zero() {
    let m = manifest(3);
    let a = write_log("diff_a.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let b = write_log("diff_b.jsonl", &[RUN_START, SERIES, HEARTBEAT, COUNTER, &m]);
    let out = report(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(!stdout.contains("REGRESSION"), "{stdout}");
}

#[test]
fn report_diff_flags_deterministic_counter_change_but_not_ns_noise() {
    let ma = manifest(3); // c=3, busy_ns=300
    let mb = manifest(4); // c=4, busy_ns=400
    let a = write_log("reg_a.jsonl", &[RUN_START, SERIES, &ma]);
    let b = write_log("reg_b.jsonl", &[RUN_START, SERIES, &mb]);
    let out = report(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "deterministic drift must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    // The _ns counter drifted just as much but is informational-only.
    assert!(stdout.contains("counter busy_ns"), "{stdout}");
    assert!(!stdout.contains("busy_ns  REGRESSION"), "{stdout}");

    // A generous threshold waves the same drift through.
    let out = report(&[
        "--threshold-pct",
        "50",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success());
}

#[test]
fn report_diff_zero_baseline_counter_is_deterministic_regression() {
    // Regression: a 0 → n counter used to divide by the zero baseline
    // and print an astronomical junk percent. It must now report the
    // absolute delta and a deterministic REGRESSION verdict that no
    // --threshold-pct can wave through.
    let ma = manifest(0); // c=0
    let mb = manifest(4); // c=4
    let a = write_log("zero_a.jsonl", &[RUN_START, SERIES, &ma]);
    let b = write_log("zero_b.jsonl", &[RUN_START, SERIES, &mb]);
    let out = report(&[
        "--threshold-pct",
        "1000000",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "zero baseline must regress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION (zero baseline)"), "{stdout}");
    assert!(stdout.contains("+4 (abs, zero baseline)"), "{stdout}");
    assert!(!stdout.contains("NaN%"), "{stdout}");
    assert!(!stdout.contains("inf%"), "{stdout}");
}

#[test]
fn report_diff_one_sided_counter_is_deterministic_regression() {
    // A deterministic counter present in only one run used to produce a
    // NaN percent that compared false against every threshold and was
    // silently dropped from the table.
    let ma = manifest(3);
    let mb = r#"{"type":"manifest","label":"t","config_hash":"0x0123456789abcdef","seed":1,"threads":2,"wall_ns":10,"level":"info","phases":{"p":{"count":1,"total_ns":5,"max_ns":5}},"counters":{"c":3,"busy_ns":300,"extra":7},"hists":{},"peak_rss_kb":"3072"}"#.to_string();
    let a = write_log("oneside_a.jsonl", &[RUN_START, SERIES, &ma]);
    let b = write_log("oneside_b.jsonl", &[RUN_START, SERIES, &mb]);
    let out = report(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "one-sided counter must regress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("counter extra"), "{stdout}");
    assert!(stdout.contains("REGRESSION (one run only)"), "{stdout}");
    assert!(!stdout.contains("NaN%"), "{stdout}");
}

#[test]
fn report_asserts_peak_rss_budget() {
    let m = manifest(3);
    let p = write_log("rss.jsonl", &[RUN_START, HEARTBEAT, &m]);
    // Peak is 3 MiB (3072 kB from heartbeat and manifest).
    let ok = report(&["--assert-peak-rss-mb", "4", p.to_str().unwrap()]);
    assert!(ok.status.success());
    let bad = report(&["--assert-peak-rss-mb", "2", p.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("exceeds budget"), "{stderr}");
}
