#!/bin/sh
# Regenerates the headline figures at full paper scale (1000 cities,
# 5000 pairs, 96 snapshots, 0.5 deg relay grid). Slow: ~40 min per figure
# on one core.
set -x
echo "################ fig2_latency PAPER"
./target/release/fig2_latency --scale paper
echo "################ fig4_throughput PAPER"
./target/release/fig4_throughput --scale paper --disconnected
echo PAPER_RUNS_DONE
